(** Interpreter for translated programs: executes host code natively, drives
    the {!Gpusim} device for data movement and kernels, and (when enabled)
    the {!Coherence} runtime for the paper's memory-transfer verification.

    When the device carries an armed {!Gpusim.Fault_plan}, the interpreter
    becomes a resilient runtime governed by a {!Resilience.policy}:

    - transient transfer/allocation faults are retried with exponential
      backoff (charged to the [Fault_recovery] metrics category);
    - silent transfer corruption is caught by end-to-end checksums and
      repaired by re-transfer;
    - kernel launches checkpoint their device inputs and committed scalars,
      so launch faults and ECC-detected bit flips re-execute from a clean
      state — and each re-execution is validated against the sequential
      reference (§III-A's comparator), reusing the demotion-snapshot idea;
    - exhausted retries and device loss degrade to CPU fallback: the
      original sequential region runs on the host (host mode after loss),
      so a [full]-policy run never produces a silently wrong answer. *)

open Minic.Ast
open Codegen.Tprog

type outcome = {
  ctx : Eval.ctx;  (** final host state *)
  device : Gpusim.Device.t;
  devset : Gpusim.Device_set.t;  (** the device set [device] is primary of *)
  coherence : Coherence.t;
  tprog : Codegen.Tprog.t;
  site_execs : (int, int) Hashtbl.t;  (** transfer-site id -> executions *)
  sites :
    (int, Codegen.Tprog.site * string * Codegen.Tprog.xdir) Hashtbl.t;
      (** executed transfer sites with their variable and direction *)
  resilience : Resilience.stats;  (** fault-recovery accounting *)
  imbalance : Obs.Imbalance.t option;
      (** shard-level cost attribution of every sharded launch
          (multi-device runs only) *)
}

let reports o = Coherence.reports o.coherence
let metrics o = o.device.Gpusim.Device.metrics

(** Final contents of host array [name] (by root). *)
let host_array o name = Value.array_buf o.ctx.Eval.env name

let host_scalar o name = Value.get_scalar o.ctx.Eval.env name

exception Stop

let run ?(coherence = true) ?(engine = Engine.Tree) ?granularity
    ?(seed = 42) ?(trace = false) ?cm ?plan
    ?(resilience = Resilience.none) ?(devices = 1) ?schedule ?obs ?ledger
    ?audit ?kcache (tp : Codegen.Tprog.t) =
  if devices < 1 then invalid_arg "Interp.run: devices must be >= 1";
  (* A one-member run creates the standalone device exactly as it always
     did and merely wraps it, so [devices = 1] takes the identical code
     path (and RNG stream) as the pre-device-set runtime. *)
  let devset =
    if devices = 1 then
      Gpusim.Device_set.of_device ?schedule
        (Gpusim.Device.create ?cm ~seed ~trace ?plan ())
    else Gpusim.Device_set.create ?cm ~seed ~trace ?plan ?schedule devices
  in
  let device = Gpusim.Device_set.primary devset in
  let multi = Gpusim.Device_set.size devset > 1 in
  (* Fold member fault events back into the base plan even when a fault
     escapes (the fault matrix reads the plan off exception paths). *)
  Fun.protect ~finally:(fun () -> Gpusim.Device_set.flush_events devset)
  @@ fun () ->
  let metrics = device.Gpusim.Device.metrics in
  let coh =
    Coherence.create ?granularity ?audit
      ~now:(fun () -> metrics.Gpusim.Metrics.host_clock)
      ~devices ()
  in
  (* Observability: spans are stamped by the simulated host clock; every
     metrics charge becomes a trace event (the conservation invariant);
     device-timeline events become [Device] leaf spans.  A one-member run
     keeps the exact pre-device-set wiring — untagged charges on the
     primary — so its trace is byte-identical to the standalone runtime; a
     multi-member run observes {e every} member, tagging each charge and
     timeline leaf with the owning ordinal. *)
  (match obs with
  | None -> ()
  | Some tr ->
      Obs.Trace.set_clock tr (fun () -> metrics.Gpusim.Metrics.host_clock);
      if not multi then begin
        Gpusim.Metrics.set_on_charge metrics (fun cat dt ->
            Obs.Trace.charge tr
              ~category:(Gpusim.Metrics.category_name cat)
              dt);
        Gpusim.Timeline.set_on_event device.Gpusim.Device.timeline (fun e ->
            Obs.Trace.leaf tr Obs.Trace.Device
              (Gpusim.Timeline.kind_name e.Gpusim.Timeline.ev_kind)
              ~attrs:[ ("label", e.Gpusim.Timeline.ev_label) ]
              ~start:e.Gpusim.Timeline.ev_start
              ~duration:e.Gpusim.Timeline.ev_duration ())
      end
      else
        Array.iter
          (fun d ->
            let ord = d.Gpusim.Device.id in
            Gpusim.Metrics.set_on_charge d.Gpusim.Device.metrics
              (fun cat dt ->
                Obs.Trace.charge tr ~dev:ord
                  ~category:(Gpusim.Metrics.category_name cat)
                  dt);
            Gpusim.Timeline.set_on_event d.Gpusim.Device.timeline (fun e ->
                Obs.Trace.leaf tr Obs.Trace.Device
                  (Gpusim.Timeline.kind_name e.Gpusim.Timeline.ev_kind)
                  ~dev:ord
                  ~attrs:[ ("label", e.Gpusim.Timeline.ev_label) ]
                  ~start:e.Gpusim.Timeline.ev_start
                  ~duration:e.Gpusim.Timeline.ev_duration ()))
          devset.Gpusim.Device_set.devices);
  (* Shard-level cost attribution: every sharded launch's measured
     iteration weights and charged durations, for the schedule analyzer.
     A one-member run has nothing to attribute. *)
  let ilog =
    if multi then
      Some
        (Obs.Imbalance.create
           ~devices:(Gpusim.Device_set.size devset)
           ~schedule:
             (Gpusim.Device_set.schedule_name
                devset.Gpusim.Device_set.schedule))
    else None
  in
  (* Data-movement ledger: the cause/site/redundancy of the transfer
     currently in flight, read by the per-device DMA hooks below.  The
     hooks fire inside [Gpusim.Device.upload]/[download] with exactly the
     bytes the metrics accumulator recorded, so the ledger conserves
     bytes against [bytes_h2d]/[bytes_d2h] by construction; attaching a
     ledger is pure observation — no RNG draw, charge, or functional
     effect changes. *)
  let lcause = ref Obs.Ledger.Copyin in
  let lsite = ref ("", "") in
  let lexec = ref 0 in
  let lredundant : (int -> bool) ref = ref (fun _ -> false) in
  let lhoist = ref false in
  (* Hoistability tracking: a transfer-site execution is hoistable when
     it repeats an earlier movement of the same array and no host access
     in between required it — no host [Check_write] since the previous
     upload (H2D), no host [Check_read] since the previous download
     (D2H).  Driven by the inserted coherence checks, so it is only
     meaningful on instrumented runs (exactly where [memtrace] runs). *)
  let host_dirty : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let host_fetched : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let up_seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let down_seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let lspan () =
    match obs with
    | Some tr -> Option.value ~default:(-1) (Obs.Trace.current_span_id tr)
    | None -> -1
  in
  (match ledger with
  | None -> ()
  | Some lg ->
      let install dev =
        let ord = dev.Gpusim.Device.id in
        Gpusim.Device.set_on_xfer dev (fun x ->
            let site, loc = !lsite in
            Obs.Ledger.xfer lg ~array:x.Gpusim.Device.x_name
              ~dir:
                (if x.Gpusim.Device.x_h2d then Obs.Ledger.H2d
                 else Obs.Ledger.D2h)
              ~cause:!lcause ~bytes:x.Gpusim.Device.x_bytes ~dev:ord ~site
              ~loc ~exec:!lexec ~span:(lspan ())
              ~time:x.Gpusim.Device.x_start
              ~duration:x.Gpusim.Device.x_duration ~counted:true
              ~redundant:(!lredundant ord) ~hoist:!lhoist);
        Gpusim.Device.set_on_mem dev (fun m ->
            Obs.Ledger.mem lg ~array:m.Gpusim.Device.m_name ~dev:ord
              ~bytes:m.Gpusim.Device.m_delta
              ~allocated:m.Gpusim.Device.m_allocated
              ~time:m.Gpusim.Device.m_time)
      in
      if multi then Array.iter install devset.Gpusim.Device_set.devices
      else install device);
  (* Record a peer/mirror blit the DMA hooks cannot see: modeled
     overlapped movement, ledgered uncounted so conservation still holds. *)
  let note_blit ~array ~dir ~cause ~bytes ~dev ~site ~loc =
    match ledger with
    | None -> ()
    | Some lg ->
        Obs.Ledger.xfer lg ~array ~dir ~cause ~bytes ~dev ~site ~loc
          ~exec:0 ~span:(lspan ())
          ~time:metrics.Gpusim.Metrics.host_clock ~duration:0.0
          ~counted:false ~redundant:false ~hoist:false
  in
  let in_span kind name ?loc ?directive f =
    match obs with
    | None -> f ()
    | Some tr -> Obs.Trace.with_span tr kind name ?loc ?directive f
  in
  let bump name =
    match obs with None -> () | Some tr -> Obs.Trace.incr tr name
  in
  let site_execs = Hashtbl.create 32 in
  let sites = Hashtbl.create 32 in
  let env = Value.create () in
  let ctx = Eval.make tp.source env in
  (* Attach the OpenACC runtime-library routines to the device. *)
  let api = Acc_api.create devset in
  ctx.Eval.call_hook <- Some (Acc_api.hook api);
  Eval.init_globals ctx;

  (* Closure-compilation engine: kernel bodies compile once (cached by
     kernel id) and run over register frames; host statement leaves
     compile in mirror mode (cached by translated-statement id), keeping
     the environment name-addressable for everything around them.  The
     recovery paths (CPU fallback, recovery validation) stay on the tree
     walker under either engine: recovery deliberately re-executes
     through the independent engine. *)
  let ecache = lazy (Compile.create_cache ?store:kcache tp.source) in
  let exec_kernel dev k =
    match engine with
    | Engine.Tree -> Kernel_exec.run ctx dev k
    | Engine.Compiled ->
        let cache = Lazy.force ecache in
        if Compile.cached cache k then bump "engine_compile_hits"
        else begin
          bump "engine_compiles";
          in_span Obs.Trace.Phase "compile-kernel"
            ~loc:(Minic.Loc.to_string k.k_loc) ~directive:k.k_name
            (fun () -> Compile.prepare cache k)
        end;
        Compile.run_kernel cache ctx dev k
  in

  let cmodel = device.Gpusim.Device.cm in
  let last_ops = ref ctx.Eval.ops in
  (* Charge accumulated host interpretation work as CPU time. *)
  let charge_host () =
    let delta = ctx.Eval.ops - !last_ops in
    if delta > 0 then
      Gpusim.Metrics.charge metrics Gpusim.Metrics.Cpu_time
        (Gpusim.Costmodel.cpu_time cmodel ~ops:delta);
    last_ops := ctx.Eval.ops
  in
  let eval_int e = Value.to_int (Eval.eval ctx e) in
  let eval_async = Option.map eval_int in

  (* ------------------------- fault recovery ------------------------- *)
  let policy = resilience in
  let stats = Resilience.fresh_stats () in
  (* Every resilience action also becomes a [Recovery] leaf span carrying
     its cause, so traces explain *why* time was spent recovering. *)
  let record ~fault ~action ~ok =
    Resilience.record stats ~fault ~action ~ok;
    bump "recoveries";
    match obs with
    | None -> ()
    | Some tr ->
        Obs.Trace.leaf tr Obs.Trace.Recovery action
          ~attrs:
            [ ("cause",
               Gpusim.Fault_plan.kind_name fault.Gpusim.Device.f_kind);
              ("target", fault.Gpusim.Device.f_target);
              ("op", fault.Gpusim.Device.f_op);
              ("ok", string_of_bool ok) ]
          ~start:metrics.Gpusim.Metrics.host_clock ~duration:0.0 ()
  in
  let host_mode = ref false in  (* device lost: everything runs on the CPU *)
  (* Arrays demoted to host residence (OOM / unrecoverable transfers). *)
  let host_only : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  (* Roots whose freshest copy lives only on the device, and their
     host-side resilience mirrors (kept under [cpu_fallback] so a lost
     device does not take the data with it). *)
  let device_fresh : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let mirrors : (string, Gpusim.Buf.t) Hashtbl.t = Hashtbl.create 8 in

  let charge_recovery dt =
    Gpusim.Metrics.charge metrics Gpusim.Metrics.Fault_recovery dt
  in
  let backoff_delay attempt =
    policy.Resilience.backoff *. float_of_int (1 lsl attempt)
  in
  let unrecovered fault =
    stats.Resilience.unrecovered <- stats.Resilience.unrecovered + 1;
    record ~fault ~action:"abort" ~ok:false;
    raise (Resilience.Unrecovered fault)
  in
  (* Restore a mirrored buffer into the host array it shadows. *)
  let restore_mirror v =
    match (Hashtbl.find_opt mirrors v, Value.lookup env v) with
    | Some m, Some (Value.Array { buf = Some hb; _ })
      when Gpusim.Buf.length m = Gpusim.Buf.length hb ->
        Gpusim.Buf.blit ~src:m ~dst:hb;
        note_blit ~array:v ~dir:Obs.Ledger.D2h ~cause:Obs.Ledger.Demotion
          ~bytes:(Gpusim.Buf.bytes m) ~dev:device.Gpusim.Device.id
          ~site:"mirror-restore" ~loc:"";
        charge_recovery
          (Gpusim.Costmodel.cpu_time cmodel ~ops:(Gpusim.Buf.length m))
    | _ -> ()
  in
  (* The device dropped off the bus: recover the data only it held from
     the resilience mirrors, then continue in host mode. *)
  let enter_host_mode fault =
    host_mode := true;
    stats.Resilience.device_lost <- true;
    Hashtbl.iter (fun v () -> restore_mirror v) device_fresh;
    Hashtbl.reset device_fresh;
    record ~fault ~action:"host-mode" ~ok:true
  in
  let on_lost fault =
    if policy.Resilience.cpu_fallback then enter_host_mode fault
    else unrecovered fault
  in
  (* ------------------- device-set (multi-device) state ------------------ *)
  (* Member devices currently holding the freshest copy of each root, in
     device order (functional tracking, independent of the coherence
     runtime so it works with verification disabled). *)
  let fresh_on : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  (* Gather downloads rotate across the members holding a fresh copy: every
     member's DMA engine charges its own clock, so the host-visible cost of
     result gathering shrinks as the set grows (the scaling the bench scale
     tier measures). *)
  let gather_rr = ref 0 in
  let alive_members () =
    List.map (Gpusim.Device_set.device devset)
      (Gpusim.Device_set.alive_ids devset)
  in
  (* One member dropped off the bus: its copies are gone; survivors carry
     on.  Losing the last member degrades the whole run ({!on_lost}). *)
  let on_member_lost d fault =
    stats.Resilience.devices_lost <- stats.Resilience.devices_lost + 1;
    record ~fault ~action:"device-drop" ~ok:true;
    Coherence.on_device_lost coh d;
    Hashtbl.filter_map_inplace
      (fun _ ids ->
        match List.filter (fun x -> x <> d) ids with
        | [] -> None
        | ids -> Some ids)
      fresh_on;
    if Gpusim.Device_set.all_lost devset then on_lost fault
  in
  (* Keep an array on the host for the rest of the run. *)
  let demote_to_host v =
    if Hashtbl.mem device_fresh v then restore_mirror v;
    Hashtbl.remove device_fresh v;
    Hashtbl.remove mirrors v;
    List.iter
      (fun dev ->
        if Gpusim.Device.is_allocated dev v then Gpusim.Device.free dev v)
      (if multi then alive_members () else [ device ]);
    Hashtbl.remove fresh_on v;
    Hashtbl.replace host_only v ()
  in
  (* After a successful launch the written roots are freshest on the
     device; under a fallback-capable policy, mirror them so device loss
     cannot destroy data (the checkpoint upkeep the report accounts for). *)
  let refresh_mirrors dev written =
    Analysis.Varset.iter
      (fun v ->
        if Gpusim.Device.is_allocated dev v then begin
          Hashtbl.replace device_fresh v ();
          if policy.Resilience.cpu_fallback then begin
            let b = Gpusim.Device.buffer dev v in
            (match Hashtbl.find_opt mirrors v with
            | Some m when Gpusim.Buf.length m = Gpusim.Buf.length b ->
                Gpusim.Buf.blit ~src:b ~dst:m
            | _ -> Hashtbl.replace mirrors v (Gpusim.Buf.copy b));
            charge_recovery
              (Gpusim.Costmodel.compare_time cmodel
                 ~elems:(Gpusim.Buf.length b))
          end
        end)
      written
  in

  (* ----------------------- resilient transfers ---------------------- *)
  let checksum_range ~range buf = Gpusim.Buf.checksum ?range buf in
  let do_transfer ?(dev = device) ?(on_dev_lost = on_lost) x ~host ~range
      ~async =
    let var = x.x_var in
    let label = x.x_site.site_label in
    let op = match x.x_dir with H2D -> "upload" | D2H -> "download" in
    let base_cause = !lcause in
    let dev_op () =
      match x.x_dir with
      | H2D -> Gpusim.Device.upload dev var ~host ?range ?async ~label ()
      | D2H -> Gpusim.Device.download dev var ~host ?range ?async ~label ()
    in
    (* End-to-end verification: source and destination checksums must
       agree, or the copy is redone ([Xfer_corrupt]'s only detector). *)
    let checksum_ok () =
      (not policy.Resilience.checksum)
      ||
      (let dbuf = Gpusim.Device.buffer dev var in
       let elems =
         match range with
         | Some (_, len) -> len
         | None -> Gpusim.Buf.length host
       in
       charge_recovery (Gpusim.Costmodel.compare_time cmodel ~elems);
       checksum_range ~range host = checksum_range ~range dbuf)
    in
    let corrupt_fault () =
      { Gpusim.Device.f_kind = Gpusim.Fault_plan.Xfer_corrupt;
        f_target = var; f_op = op }
    in
    let rec attempt n =
      (* Re-transfers (transient retry, checksum repair) are their own
         ledger cause: recovery traffic, not the data clause's. *)
      lcause := (if n = 0 then base_cause else Obs.Ledger.Retry);
      match dev_op () with
      | () ->
          if not (checksum_ok ()) then
            if n < policy.Resilience.max_retries then begin
              stats.Resilience.retransfers <-
                stats.Resilience.retransfers + 1;
              record ~fault:(corrupt_fault ())
                ~action:"re-transfer" ~ok:true;
              charge_recovery (backoff_delay n);
              attempt (n + 1)
            end
            else if policy.Resilience.cpu_fallback then begin
              record ~fault:(corrupt_fault ())
                ~action:"host-demote" ~ok:true;
              demote_to_host var
            end
            else unrecovered (corrupt_fault ())
      | exception Gpusim.Device.Device_fault fault
        when fault.Gpusim.Device.f_kind = Gpusim.Fault_plan.Device_lost
             && (policy.Resilience.cpu_fallback
                || policy.Resilience.max_retries > 0) ->
          (* Host mode makes the host copy authoritative, so the transfer
             itself needs no replay; a member loss is replayed by the
             caller on a surviving member. *)
          on_dev_lost fault
      | exception Gpusim.Device.Device_fault fault
        when Gpusim.Fault_plan.transient fault.Gpusim.Device.f_kind
             && policy.Resilience.max_retries > 0 ->
          if n < policy.Resilience.max_retries then begin
            stats.Resilience.retries <- stats.Resilience.retries + 1;
            record ~fault ~action:"retry" ~ok:true;
            charge_recovery (backoff_delay n);
            attempt (n + 1)
          end
          else if policy.Resilience.cpu_fallback then begin
            record ~fault ~action:"host-demote" ~ok:true;
            demote_to_host var
          end
          else unrecovered fault
    in
    attempt 0
  in

  (* ------------------------ resilient launches ----------------------- *)
  (* Sequential execution of the kernel's original source region on the
     live host state — the CPU fallback (and the whole of host mode). *)
  let cpu_exec k =
    Value.scoped env (fun () -> Eval.exec ctx k.k_source);
    charge_host ();
    stats.Resilience.fallbacks <- stats.Resilience.fallbacks + 1
  in
  (* Fall back for one kernel: restore its host inputs from the
     pre-launch checkpoint of the device buffers, run the sequential
     region, then push the written arrays back to the (still alive)
     device so later device kernels see the results. *)
  let cpu_fallback_exec k ~ckpt ~scalars =
    List.iter (fun (c, v0) -> c.Value.v <- v0) scalars;
    List.iter
      (fun (v, b) ->
        match Value.lookup env v with
        | Some (Value.Array { buf = Some hb; _ })
          when Gpusim.Buf.length hb = Gpusim.Buf.length b ->
            Gpusim.Buf.blit ~src:b ~dst:hb;
            note_blit ~array:v ~dir:Obs.Ledger.D2h
              ~cause:Obs.Ledger.Demotion ~bytes:(Gpusim.Buf.bytes b)
              ~dev:device.Gpusim.Device.id ~site:(k.k_name ^ ".restore")
              ~loc:(Minic.Loc.to_string k.k_loc);
            charge_recovery
              (Gpusim.Costmodel.cpu_time cmodel ~ops:(Gpusim.Buf.length b))
        | _ -> ())
      ckpt;
    cpu_exec k;
    if
      (not !host_mode)
      &&
      if multi then Gpusim.Device_set.first_alive devset <> None
      else Gpusim.Device.alive device
    then begin
      lcause := Obs.Ledger.Failover;
      lsite := (k.k_name ^ ".recover", Minic.Loc.to_string k.k_loc);
      lexec := 0;
      lredundant := (fun _ -> false);
      lhoist := false;
      Analysis.Varset.iter
        (fun v ->
          List.iter
            (fun dev ->
              if Gpusim.Device.is_allocated dev v then begin
                let host = Value.array_buf env v in
                let rec push n =
                  try
                    Gpusim.Device.upload dev v ~host
                      ~label:(k.k_name ^ ".recover") ()
                  with
                  | Gpusim.Device.Device_fault fault
                    when fault.Gpusim.Device.f_kind
                         = Gpusim.Fault_plan.Device_lost ->
                      if multi then
                        on_member_lost dev.Gpusim.Device.id fault
                      else on_lost fault
                  | Gpusim.Device.Device_fault fault
                    when Gpusim.Fault_plan.transient
                           fault.Gpusim.Device.f_kind ->
                      if n < policy.Resilience.max_retries then begin
                        stats.Resilience.retries <-
                          stats.Resilience.retries + 1;
                        charge_recovery (backoff_delay n);
                        push (n + 1)
                      end
                      else demote_to_host v
                in
                push 0;
                Hashtbl.remove device_fresh v
              end)
            (if multi then alive_members () else [ device ]);
          if multi && not (Hashtbl.mem host_only v) then
            Hashtbl.replace fresh_on v (Gpusim.Device_set.alive_ids devset))
        (kernel_arrays k)
    end
  in
  (* Validate a recovery with the §III-A comparator: execute the original
     sequential region in a shadow environment seeded from the checkpoint
     (scalar entry values, pre-launch device arrays) and compare every
     written array and committed scalar against the recovered device
     results under a small error margin. *)
  let validate_recovery dev k ~ckpt ~scalar_values =
    (* One shadow copy per checkpointed root, shared by every binding that
       aliases it (pointer-swap programs). *)
    let shadow_bufs = List.map (fun (v, b) -> (v, Gpusim.Buf.copy b)) ckpt in
    let clone_frame fr =
      let fr' = Hashtbl.create (Hashtbl.length fr) in
      Hashtbl.iter
        (fun name b ->
          let b' =
            match b with
            | Value.Scalar c ->
                let v =
                  match List.assoc_opt name scalar_values with
                  | Some v0 -> v0
                  | None -> c.Value.v
                in
                Value.Scalar { Value.v }
            | Value.Array slot -> (
                match List.assoc_opt slot.Value.root shadow_bufs with
                | Some sb ->
                    Value.Array
                      { Value.buf = Some sb;
                        root = slot.Value.root;
                        shape = slot.Value.shape }
                | None -> b)
          in
          Hashtbl.replace fr' name b')
        fr;
      fr'
    in
    let env' =
      { Value.globals = clone_frame env.Value.globals;
        frames = List.map clone_frame env.Value.frames }
    in
    let sctx = Eval.make ctx.Eval.prog env' in
    Value.scoped env' (fun () -> Eval.exec sctx k.k_source);
    charge_recovery
      (Gpusim.Costmodel.cpu_time cmodel ~ops:sctx.Eval.ops);
    let margin = 1e-6 in
    let arrays_ok =
      Analysis.Varset.for_all
        (fun v ->
          match Value.lookup env' v with
          | Some (Value.Array { buf = Some reference; _ })
            when Gpusim.Device.is_allocated dev v ->
              let got = Gpusim.Device.buffer dev v in
              charge_recovery
                (Gpusim.Costmodel.compare_time cmodel
                   ~elems:(Gpusim.Buf.length reference));
              let _, bad = Gpusim.Buf.compare ~margin ~reference got in
              bad = 0
          | _ -> true)
        k.k_arrays_written
    in
    let scalars_ok =
      List.for_all
        (fun (name, _) ->
          match (Value.lookup env' name, Value.lookup env name) with
          | Some (Value.Scalar c_ref), Some (Value.Scalar c_got) ->
              let x = Value.to_float c_ref.Value.v in
              let y = Value.to_float c_got.Value.v in
              Float.abs (x -. y) <= margin *. Float.max 1.0 (Float.abs x)
          | _ -> true)
        k.k_scalars
    in
    arrays_ok && scalars_ok
  in
  (* Names whose host cells a kernel commits into (the state a checkpoint
     must capture besides device arrays). *)
  let committed_names k =
    let base = List.map fst k.k_scalars in
    let ind = Analysis.Varset.elements k.k_induction in
    let lv = match k.k_loop with Some l -> [ l.kl_var ] | None -> [] in
    List.sort_uniq compare (base @ ind @ lv)
  in
  let launch_device k async =
    let arrays = Analysis.Varset.elements (kernel_arrays k) in
    let checkpointing =
      policy.Resilience.reexec || policy.Resilience.cpu_fallback
    in
    (* Checkpoint: pre-launch device buffers (the kernel's inputs, exactly
       the data the §III-A demotion snapshot would upload) plus the
       scalar cells the kernel will commit. *)
    let ckpt =
      if checkpointing then
        List.filter_map
          (fun v ->
            if Gpusim.Device.is_allocated device v then begin
              let b = Gpusim.Device.buffer device v in
              charge_recovery
                (Gpusim.Costmodel.compare_time cmodel
                   ~elems:(Gpusim.Buf.length b));
              Some (v, Gpusim.Buf.copy b)
            end
            else None)
          arrays
      else []
    in
    let scalars =
      if checkpointing then
        List.filter_map
          (fun name ->
            match Value.lookup env name with
            | Some (Value.Scalar c) -> Some (c, c.Value.v)
            | _ -> None)
          (committed_names k)
      else []
    in
    let scalar_values =
      List.filter_map
        (fun name ->
          match Value.lookup env name with
          | Some (Value.Scalar c) -> Some (name, c.Value.v)
          | _ -> None)
        (committed_names k)
    in
    let restore_ckpt () =
      List.iter
        (fun (v, b) ->
          if Gpusim.Device.is_allocated device v then
            Gpusim.Buf.blit ~src:b ~dst:(Gpusim.Device.buffer device v))
        ckpt;
      List.iter (fun (c, v0) -> c.Value.v <- v0) scalars
    in
    let written = Analysis.Varset.elements k.k_arrays_written in
    let fall_back fault =
      record ~fault ~action:"cpu-fallback" ~ok:true;
      restore_ckpt ();
      cpu_fallback_exec k ~ckpt ~scalars
    in
    let rec attempt n =
      match
        Gpusim.Device.begin_launch device ~label:k.k_name;
        let r = exec_kernel device k in
        let width =
          let g, w, v = k.k_dims in
          match List.filter_map (Option.map eval_int) [ g; w; v ] with
          | [] -> None
          | dims -> Some (List.fold_left ( * ) 1 dims)
        in
        Gpusim.Device.launch device ~iterations:r.Kernel_exec.iterations
          ~ops_per_iter:k.k_ops_per_iter ?width ?async ~label:k.k_name ();
        Gpusim.Device.scrub device written
      with
      | [] ->
          (* Clean execution.  A recovery (n > 0) must additionally pass
             the sequential-reference comparison before it counts. *)
          if n > 0 && policy.Resilience.validate then begin
            if validate_recovery device k ~ckpt ~scalar_values then
              stats.Resilience.verified <- stats.Resilience.verified + 1
            else begin
              let fault =
                { Gpusim.Device.f_kind = Gpusim.Fault_plan.Launch_fail;
                  f_target = k.k_name; f_op = "recovery-validation" }
              in
              record ~fault ~action:"re-execute" ~ok:false;
              escalate n fault
            end
          end;
          refresh_mirrors device k.k_arrays_written
      | detected :: _ ->
          (* ECC caught a bit flip in a written buffer: the results are
             poisoned, so recover exactly like a failed launch. *)
          recover n detected
      | exception Gpusim.Device.Device_fault fault -> recover n fault
    and recover n fault =
      match fault.Gpusim.Device.f_kind with
      | Gpusim.Fault_plan.Device_lost
        when policy.Resilience.cpu_fallback ->
          enter_host_mode fault;
          (* Device state is gone; the checkpoint still has the kernel's
             inputs, so the sequential region replays it on the host. *)
          cpu_fallback_exec k ~ckpt ~scalars
      | Gpusim.Fault_plan.Device_lost
        when policy.Resilience.max_retries > 0 ->
          unrecovered fault
      | k' when Gpusim.Fault_plan.transient k' && policy.Resilience.reexec
        ->
          if n < policy.Resilience.max_retries then begin
            stats.Resilience.reexecs <- stats.Resilience.reexecs + 1;
            record ~fault ~action:"re-execute" ~ok:true;
            restore_ckpt ();
            charge_recovery (backoff_delay n);
            attempt (n + 1)
          end
          else escalate n fault
      | k'
        when Gpusim.Fault_plan.transient k'
             && policy.Resilience.cpu_fallback ->
          fall_back fault
      | k'
        when Gpusim.Fault_plan.transient k'
             && policy.Resilience.max_retries > 0 ->
          unrecovered fault
      | _ -> raise (Gpusim.Device.Device_fault fault)
    and escalate _n fault =
      if policy.Resilience.cpu_fallback then fall_back fault
      else unrecovered fault
    in
    attempt 0
  in

  (* ------------------ multi-device (device-set) launches ----------------- *)
  (* Escalation out of a failed multi-device launch: degrade the whole
     kernel to the sequential region (or propagate, per policy). *)
  let exception Degrade of Gpusim.Device.fault_info in
  let kernel_width k =
    let g, w, v = k.k_dims in
    match List.filter_map (Option.map eval_int) [ g; w; v ] with
    | [] -> None
    | dims -> Some (List.fold_left ( * ) 1 dims)
  in
  (* Bring every alive member's copy of the kernel's arrays current before
     a launch: a functional peer blit from a fresh member, modeled as
     overlapped peer DMA (charged to no clock), and noted in the
     per-device lattice. *)
  let sync_inputs k =
    Analysis.Varset.iter
      (fun v ->
        match Hashtbl.find_opt fresh_on v with
        | None | Some [] -> ()
        | Some (f :: _ as fresh) ->
            let src =
              Gpusim.Device.buffer (Gpusim.Device_set.device devset f) v
            in
            let refreshed = ref [] in
            List.iter
              (fun d ->
                if not (List.mem d fresh) then begin
                  let dev = Gpusim.Device_set.device devset d in
                  if Gpusim.Device.is_allocated dev v then begin
                    Gpusim.Buf.blit ~src ~dst:(Gpusim.Device.buffer dev v);
                    refreshed := d :: !refreshed
                  end
                end)
              (Gpusim.Device_set.alive_ids devset);
            (match !refreshed with
            | [] -> ()
            | refreshed ->
                bump "peer_syncs";
                List.iter
                  (fun d ->
                    note_blit ~array:v ~dir:Obs.Ledger.H2d
                      ~cause:Obs.Ledger.Rebroadcast
                      ~bytes:(Gpusim.Buf.bytes src) ~dev:d ~site:"peer-sync"
                      ~loc:"")
                  refreshed;
                Hashtbl.replace fresh_on v
                  (List.sort_uniq compare (fresh @ refreshed));
                if coherence then
                  Coherence.note_gpu_fresh coh v ~devs:refreshed))
      (kernel_arrays k)
  in
  (* Snapshot the kernel's device inputs from a fresh member.  Always taken
     in multi mode: besides checkpointed recovery it is the merge reference
     that separates each shard's writes.  The §III-A-style checkpoint cost
     is charged only when the policy actually checkpoints. *)
  let snapshot_inputs k ~charge =
    match Gpusim.Device_set.first_alive devset with
    | None -> []
    | Some dev ->
        List.filter_map
          (fun v ->
            if Gpusim.Device.is_allocated dev v then begin
              let b = Gpusim.Device.buffer dev v in
              if charge then
                charge_recovery
                  (Gpusim.Costmodel.compare_time cmodel
                     ~elems:(Gpusim.Buf.length b));
              Some (v, Gpusim.Buf.copy b)
            end
            else None)
          (Analysis.Varset.elements (kernel_arrays k))
  in
  (* Execute an unsharded kernel (seq, straight-line, or lone survivor) on
     one member, failing over to the next alive member on device loss. *)
  let launch_one_member dev0 k async ~ckpt ~scalars ~scalar_values =
    let written = Analysis.Varset.elements k.k_arrays_written in
    let width = kernel_width k in
    let failed_over = ref false in
    let restore_ckpt dev =
      List.iter
        (fun (v, b) ->
          if Gpusim.Device.is_allocated dev v then
            Gpusim.Buf.blit ~src:b ~dst:(Gpusim.Device.buffer dev v))
        ckpt;
      List.iter (fun (c, v0) -> c.Value.v <- v0) scalars
    in
    let rec attempt dev n =
      match
        Gpusim.Device.begin_launch dev ~label:k.k_name;
        let r = exec_kernel dev k in
        Gpusim.Device.launch dev ~iterations:r.Kernel_exec.iterations
          ~ops_per_iter:k.k_ops_per_iter ?width ?async ~label:k.k_name ();
        Gpusim.Device.scrub dev written
      with
      | [] ->
          if (n > 0 || !failed_over) && policy.Resilience.validate then begin
            if validate_recovery dev k ~ckpt ~scalar_values then
              stats.Resilience.verified <- stats.Resilience.verified + 1
            else begin
              let fault =
                { Gpusim.Device.f_kind = Gpusim.Fault_plan.Launch_fail;
                  f_target = k.k_name; f_op = "recovery-validation" }
              in
              record ~fault ~action:"re-execute" ~ok:false;
              raise (Degrade fault)
            end
          end;
          (* The written roots are fresh only on the executing member: the
             per-device divergence the cross-device coherence reports (and
             later peer syncs) stem from. *)
          let id = dev.Gpusim.Device.id in
          List.iter (fun v -> Hashtbl.replace fresh_on v [ id ]) written;
          if coherence then
            List.iter
              (fun v -> Coherence.note_kernel_write coh v ~devs:[ id ])
              written;
          refresh_mirrors dev k.k_arrays_written
      | detected :: _ -> recover dev n detected
      | exception Gpusim.Device.Device_fault fault -> recover dev n fault
    and recover dev n fault =
      match fault.Gpusim.Device.f_kind with
      | Gpusim.Fault_plan.Device_lost
        when policy.Resilience.reexec || policy.Resilience.cpu_fallback -> (
          on_member_lost dev.Gpusim.Device.id fault;
          if !host_mode then cpu_fallback_exec k ~ckpt ~scalars
          else
            match Gpusim.Device_set.first_alive devset with
            | None -> raise (Degrade fault)
            | Some dev' ->
                stats.Resilience.failovers <-
                  stats.Resilience.failovers + 1;
                failed_over := true;
                record ~fault ~action:"failover" ~ok:true;
                restore_ckpt dev';
                charge_recovery (backoff_delay n);
                attempt dev' n)
      | k' when Gpusim.Fault_plan.transient k' && policy.Resilience.reexec
        ->
          if n < policy.Resilience.max_retries then begin
            stats.Resilience.reexecs <- stats.Resilience.reexecs + 1;
            record ~fault ~action:"re-execute" ~ok:true;
            restore_ckpt dev;
            charge_recovery (backoff_delay n);
            attempt dev (n + 1)
          end
          else raise (Degrade fault)
      | k'
        when Gpusim.Fault_plan.transient k'
             && (policy.Resilience.cpu_fallback
                || policy.Resilience.max_retries > 0) ->
          raise (Degrade fault)
      | _ -> raise (Gpusim.Device.Device_fault fault)
    in
    attempt dev0 0
  in
  (* Split a parallel-loop kernel across the alive members.  Each member
     runs its shard against its own buffers; a member dying mid-launch has
     its in-flight shard discarded and re-executed on a survivor; written
     arrays are merged against the pre-launch snapshot (last writer in
     device order wins, but shards are disjoint by construction) and
     broadcast back; recoveries are validated by the §III-A comparator. *)
  let launch_sharded k async ~ckpt ~scalar_values =
    let session = Kernel_exec.start ctx k in
    let total = Kernel_exec.total_iterations session in
    let parts = Array.of_list (Gpusim.Device_set.alive_ids devset) in
    let nparts = Array.length parts in
    let schedule = devset.Gpusim.Device_set.schedule in
    let assign i = Gpusim.Device_set.owner schedule ~parts:nparts ~total i in
    let written = Analysis.Varset.elements k.k_arrays_written in
    let width = kernel_width k in
    let executor = Array.copy parts in
    let recovered = ref false in
    let restore_written dev =
      List.iter
        (fun (v, b) ->
          if
            List.mem v written && Gpusim.Device.is_allocated dev v
          then Gpusim.Buf.blit ~src:b ~dst:(Gpusim.Device.buffer dev v))
        ckpt
    in
    let survivor_for p =
      match Gpusim.Device_set.alive_ids devset with
      | [] -> None
      | alive -> Some (List.nth alive (p mod List.length alive))
    in
    (* Phase 1 — functional execution: every shard runs (and is scrubbed /
       failed over) before any time is charged, measuring the interpreted
       ops of each iteration ordinal.  Charging is deferred to phase 2 so
       each member's shard can be priced by its measured share of the
       whole iteration space's cost-model time (work-conserving: the
       slowest member never exceeds the single-device cost). *)
    let weights = Array.make (max 1 total) 0 in
    let shard_iters = Array.make nparts 0 in
    let failed_over = Array.make nparts false in
    let rec exec_part p n =
      let dev = Gpusim.Device_set.device devset executor.(p) in
      match
        Gpusim.Device.begin_launch dev ~label:k.k_name;
        shard_iters.(p) <-
          Kernel_exec.run_shard session ~weights dev
            ~owns:(fun i -> assign i = p);
        Gpusim.Device.scrub dev written
      with
      | [] -> ()
      | detected :: _ -> recover_part p n detected
      | exception Gpusim.Device.Device_fault fault -> recover_part p n fault
    and recover_part p n fault =
      match fault.Gpusim.Device.f_kind with
      | Gpusim.Fault_plan.Device_lost
        when policy.Resilience.reexec || policy.Resilience.cpu_fallback -> (
          on_member_lost executor.(p) fault;
          if !host_mode then raise (Degrade fault)
          else
            match survivor_for p with
            | None -> raise (Degrade fault)
            | Some d' ->
                executor.(p) <- d';
                stats.Resilience.failovers <-
                  stats.Resilience.failovers + 1;
                recovered := true;
                failed_over.(p) <- true;
                record ~fault ~action:"failover" ~ok:true;
                charge_recovery (backoff_delay n);
                exec_part p n)
      | k' when Gpusim.Fault_plan.transient k' && policy.Resilience.reexec
        ->
          if n < policy.Resilience.max_retries then begin
            stats.Resilience.reexecs <- stats.Resilience.reexecs + 1;
            recovered := true;
            record ~fault ~action:"re-execute" ~ok:true;
            restore_written (Gpusim.Device_set.device devset executor.(p));
            charge_recovery (backoff_delay n);
            exec_part p (n + 1)
          end
          else raise (Degrade fault)
      | k'
        when Gpusim.Fault_plan.transient k'
             && (policy.Resilience.cpu_fallback
                || policy.Resilience.max_retries > 0) ->
          raise (Degrade fault)
      | _ -> raise (Gpusim.Device.Device_fault fault)
    in
    for p = 0 to nparts - 1 do
      exec_part p 0
    done;
    (* Phase 2 — shard pricing: split the whole iteration space's
       cost-model time (minus launch latency) across the shards in
       proportion to their measured interpreted work, and charge each
       executing member its share.  Max share <= 1, so a sharded launch
       is never slower than the unsharded one; an uneven split (the
       block/cyclic choice) shows up directly as the spread. *)
    let w_total = Array.fold_left ( + ) 0 weights in
    let overhead = cmodel.Gpusim.Costmodel.kernel_launch in
    let full =
      Gpusim.Costmodel.kernel_time ?width cmodel ~iterations:total
        ~ops_per_iter:k.k_ops_per_iter
    in
    let unit_cost =
      if w_total > 0 then
        Float.max 0.0 (full -. overhead) /. float_of_int w_total
      else 0.0
    in
    let shard_ops = Array.make nparts 0 in
    for i = 0 to total - 1 do
      let p = assign i in
      shard_ops.(p) <- shard_ops.(p) + weights.(i)
    done;
    let shard_durs = Array.make nparts 0.0 in
    for p = 0 to nparts - 1 do
      let dev = Gpusim.Device_set.device devset executor.(p) in
      let base = overhead +. (unit_cost *. float_of_int shard_ops.(p)) in
      let t0 = dev.Gpusim.Device.metrics.Gpusim.Metrics.host_clock in
      let dur =
        Gpusim.Device.launch_timed dev ~iterations:shard_iters.(p)
          ~ops_per_iter:k.k_ops_per_iter ?width ~time:base ~jitter:false
          ?async ~label:k.k_name ()
      in
      shard_durs.(p) <- dur;
      match obs with
      | None -> ()
      | Some tr ->
          Obs.Trace.leaf tr Obs.Trace.Kernel
            (Fmt.str "%s.shard%d" k.k_name p)
            ~loc:(Minic.Loc.to_string k.k_loc) ~directive:k.k_name
            ~dev:executor.(p)
            ~attrs:
              [ ("iterations", string_of_int shard_iters.(p));
                ("ops", string_of_int shard_ops.(p));
                ("failover", string_of_bool failed_over.(p)) ]
            ~start:t0 ~duration:dur ()
    done;
    (* Completion barrier: the host resumes once the slowest member's
       shards (failover re-executions included) have drained. *)
    let busy = Array.make (Gpusim.Device_set.size devset) 0.0 in
    for p = 0 to nparts - 1 do
      busy.(executor.(p)) <- busy.(executor.(p)) +. shard_durs.(p)
    done;
    let maxbusy = Array.fold_left Float.max 0.0 busy in
    let idle = Float.max 0.0 (maxbusy -. busy.(0)) in
    if idle > 0.0 then (
      match async with
      | None -> Gpusim.Metrics.charge metrics Gpusim.Metrics.Async_wait idle
      | Some q -> Gpusim.Device.delay_stream device q idle);
    (* Merge each member's disjoint shard writes against the pre-launch
       snapshot and broadcast the result (overlapped peer DMA: charged to
       no clock, but modeled as one PCIe round per launch for the
       analyzer), so every survivor holds the full array. *)
    let alive = Gpusim.Device_set.alive_ids devset in
    let merge_bytes = ref 0 in
    List.iter
      (fun v ->
        match List.assoc_opt v ckpt with
        | None -> ()
        | Some reference ->
            let merged = Gpusim.Buf.copy reference in
            List.iter
              (fun d ->
                let dev = Gpusim.Device_set.device devset d in
                if Gpusim.Device.is_allocated dev v then
                  Gpusim.Buf.merge_diff ~reference
                    ~src:(Gpusim.Device.buffer dev v) ~dst:merged)
              alive;
            List.iter
              (fun d ->
                let dev = Gpusim.Device_set.device devset d in
                if Gpusim.Device.is_allocated dev v then begin
                  Gpusim.Buf.blit ~src:merged
                    ~dst:(Gpusim.Device.buffer dev v);
                  note_blit ~array:v ~dir:Obs.Ledger.H2d
                    ~cause:Obs.Ledger.Rebroadcast
                    ~bytes:(Gpusim.Buf.bytes reference) ~dev:d
                    ~site:(k.k_name ^ ".merge")
                    ~loc:(Minic.Loc.to_string k.k_loc)
                end)
              alive;
            merge_bytes := !merge_bytes + Gpusim.Buf.bytes reference;
            Hashtbl.replace fresh_on v alive;
            if coherence then Coherence.note_kernel_write coh v ~devs:alive)
      written;
    let merge_cost =
      if !merge_bytes = 0 then 0.0
      else
        cmodel.Gpusim.Costmodel.pcie_latency
        +. float_of_int !merge_bytes
           /. cmodel.Gpusim.Costmodel.pcie_bandwidth
    in
    (match obs with
    | Some tr when merge_cost > 0.0 ->
        List.iter
          (fun d ->
            let dev = Gpusim.Device_set.device devset d in
            Obs.Trace.leaf tr Obs.Trace.Merge
              (Fmt.str "%s.merge" k.k_name)
              ~loc:(Minic.Loc.to_string k.k_loc) ~directive:k.k_name ~dev:d
              ~attrs:[ ("bytes", string_of_int !merge_bytes) ]
              ~start:dev.Gpusim.Device.metrics.Gpusim.Metrics.host_clock
              ~duration:merge_cost ())
          alive
    | Some _ | None -> ());
    (match ilog with
    | None -> ()
    | Some il ->
        Obs.Imbalance.record il
          { Obs.Imbalance.l_kernel = k.k_name;
            l_loc = Minic.Loc.to_string k.k_loc;
            l_parts = nparts;
            l_total = total;
            l_weights = weights;
            l_unit = unit_cost;
            l_overhead = overhead;
            l_shards =
              Array.init nparts (fun p ->
                  { Obs.Imbalance.sh_part = p;
                    sh_dev = executor.(p);
                    sh_iters = shard_iters.(p);
                    sh_ops = shard_ops.(p);
                    sh_time = shard_durs.(p);
                    sh_failover = failed_over.(p) });
            l_barrier = idle;
            l_wall = maxbusy;
            l_merge = merge_cost;
            l_merge_bytes = !merge_bytes });
    Kernel_exec.commit session;
    (if !recovered && policy.Resilience.validate then
       match Gpusim.Device_set.first_alive devset with
       | None -> ()
       | Some dev ->
           if validate_recovery dev k ~ckpt ~scalar_values then
             stats.Resilience.verified <- stats.Resilience.verified + 1
           else begin
             let fault =
               { Gpusim.Device.f_kind = Gpusim.Fault_plan.Launch_fail;
                 f_target = k.k_name; f_op = "recovery-validation" }
             in
             record ~fault ~action:"re-execute" ~ok:false;
             raise (Degrade fault)
           end);
    match Gpusim.Device_set.first_alive devset with
    | Some dev -> refresh_mirrors dev k.k_arrays_written
    | None -> ()
  in
  let launch_multi k async =
    let arrays = Analysis.Varset.elements (kernel_arrays k) in
    if List.exists (Hashtbl.mem host_only) arrays then begin
      let ckpt = snapshot_inputs k ~charge:false in
      cpu_fallback_exec k ~ckpt ~scalars:[]
    end
    else begin
      sync_inputs k;
      let checkpointing =
        policy.Resilience.reexec || policy.Resilience.cpu_fallback
      in
      let ckpt = snapshot_inputs k ~charge:checkpointing in
      let scalars =
        if checkpointing then
          List.filter_map
            (fun name ->
              match Value.lookup env name with
              | Some (Value.Scalar c) -> Some (c, c.Value.v)
              | _ -> None)
            (committed_names k)
        else []
      in
      let scalar_values =
        List.filter_map
          (fun name ->
            match Value.lookup env name with
            | Some (Value.Scalar c) -> Some (name, c.Value.v)
            | _ -> None)
          (committed_names k)
      in
      try
        match alive_members () with
        | [] -> cpu_exec k
        | _ :: _ :: _ when Kernel_exec.shardable k ->
            launch_sharded k async ~ckpt ~scalar_values
        | dev :: _ ->
            launch_one_member dev k async ~ckpt ~scalars ~scalar_values
      with Degrade fault ->
        if policy.Resilience.cpu_fallback then begin
          record ~fault ~action:"cpu-fallback" ~ok:true;
          cpu_fallback_exec k ~ckpt ~scalars
        end
        else unrecovered fault
    end
  in
  let launch_resilient k async =
    if !host_mode then cpu_exec k
    else if multi then launch_multi k async
    else begin
      let arrays = Analysis.Varset.elements (kernel_arrays k) in
      if List.exists (Hashtbl.mem host_only) arrays then begin
        (* Some of the kernel's data could not be kept on the device:
           run the whole region on the host, bridging from/to the arrays
           that do live on the device. *)
        let ckpt =
          List.filter_map
            (fun v ->
              if Gpusim.Device.is_allocated device v then
                Some (v, Gpusim.Buf.copy (Gpusim.Device.buffer device v))
              else None)
            arrays
        in
        cpu_fallback_exec k ~ckpt ~scalars:[]
      end
      else launch_device k async
    end
  in

  let loop_label init tid =
    match init with
    | Some { skind = Sdecl (_, v, _); _ } | Some { skind = Sassign (Lvar v, _); _ }
      -> v
    | Some _ | None -> Fmt.str "loop%d" tid
  in

  let rec exec_t (s : tstmt) =
    match s.tkind with
    | Thost st ->
        (match engine with
        | Engine.Tree -> Eval.exec ctx st
        | Engine.Compiled ->
            Compile.host_stmt (Lazy.force ecache) ctx s.tid st);
        charge_host ()
    | Tblock b -> Value.scoped env (fun () -> exec_ts b)
    | Tif (c, b1, b2) ->
        let cond = Value.truthy (Eval.eval ctx c) in
        charge_host ();
        if cond then Value.scoped env (fun () -> exec_ts b1)
        else Value.scoped env (fun () -> exec_ts b2)
    | Twhile (c, b) ->
        Coherence.enter_loop coh (Fmt.str "while%d" s.tid);
        (try
           while
             let v = Value.truthy (Eval.eval ctx c) in
             charge_host ();
             v
           do
             Coherence.next_iteration coh;
             try Value.scoped env (fun () -> exec_ts b)
             with Eval.Continue_exc -> ()
           done
         with Eval.Break_exc -> ());
        Coherence.exit_loop coh
    | Tfor (init, cond, step, b) ->
        Value.scoped env (fun () ->
            Option.iter (Eval.exec ctx) init;
            charge_host ();
            Coherence.enter_loop coh (loop_label init s.tid);
            let continue_ () =
              match cond with
              | Some c ->
                  let v = Value.truthy (Eval.eval ctx c) in
                  charge_host ();
                  v
              | None -> true
            in
            (try
               while continue_ () do
                 Coherence.next_iteration coh;
                 (try Value.scoped env (fun () -> exec_ts b)
                  with Eval.Continue_exc -> ());
                 Option.iter (Eval.exec ctx) step;
                 charge_host ()
               done
             with Eval.Break_exc -> ());
            Coherence.exit_loop coh)
    | Talloc (v, site) ->
        (* present-or-create: keep an existing buffer resident.  A device
           set broadcasts the allocation to every alive member. *)
        let need_alloc =
          (not !host_mode)
          && (not (Hashtbl.mem host_only v))
          &&
          if multi then
            List.exists
              (fun dev -> not (Gpusim.Device.is_allocated dev v))
              (alive_members ())
          else not (Gpusim.Device.is_allocated device v)
        in
        if need_alloc then begin
          charge_host ();
          in_span Obs.Trace.Alloc site.site_label
            ~loc:(Minic.Loc.to_string site.site_loc)
            ~directive:site.site_label
          @@ fun () ->
          let host = Value.array_buf env v in
          let alloc_on dev =
            let rec attempt n =
              try Gpusim.Device.alloc dev v ~like:host with
              | Gpusim.Device.Device_fault fault
                when fault.Gpusim.Device.f_kind
                     = Gpusim.Fault_plan.Device_lost
                     && (policy.Resilience.cpu_fallback
                        || policy.Resilience.max_retries > 0) ->
                  if multi then on_member_lost dev.Gpusim.Device.id fault
                  else on_lost fault
              | Gpusim.Device.Device_fault fault
                when fault.Gpusim.Device.f_kind = Gpusim.Fault_plan.Oom
                     && policy.Resilience.max_retries > 0 ->
                  if n < policy.Resilience.max_retries then begin
                    stats.Resilience.retries <- stats.Resilience.retries + 1;
                    record ~fault ~action:"retry" ~ok:true;
                    charge_recovery (backoff_delay n);
                    attempt (n + 1)
                  end
                  else if policy.Resilience.cpu_fallback then begin
                    (* Keep this array host-resident; kernels touching it
                       take the CPU-fallback path. *)
                    record ~fault ~action:"host-demote"
                      ~ok:true;
                    demote_to_host v
                  end
                  else unrecovered fault
            in
            attempt 0
          in
          if multi then
            List.iter
              (fun dev ->
                if
                  (not !host_mode)
                  && (not (Hashtbl.mem host_only v))
                  && Gpusim.Device.alive dev
                  && not (Gpusim.Device.is_allocated dev v)
                then alloc_on dev)
              (alive_members ())
          else alloc_on device
        end
    | Tfree (v, site) ->
        charge_host ();
        in_span Obs.Trace.Free site.site_label
          ~loc:(Minic.Loc.to_string site.site_loc)
          ~directive:site.site_label
        @@ fun () ->
        (if multi then
           List.iter
             (fun dev ->
               if Gpusim.Device.is_allocated dev v then
                 Gpusim.Device.free dev v)
             (if !host_mode then [] else alive_members ())
         else if (not !host_mode) && Gpusim.Device.is_allocated device v
         then Gpusim.Device.free device v);
        Hashtbl.remove host_only v;
        Hashtbl.remove device_fresh v;
        Hashtbl.remove mirrors v;
        Hashtbl.remove fresh_on v;
        if coherence then Coherence.on_free coh v
    | Txfer x ->
        let range =
          match (x.x_lo, x.x_len) with
          | Some lo, Some len -> Some (eval_int lo, eval_int len)
          | _ -> None
        in
        charge_host ();
        let async = eval_async x.x_async in
        Hashtbl.replace site_execs x.x_site.site_id
          (1 + Option.value ~default:0
                 (Hashtbl.find_opt site_execs x.x_site.site_id));
        Hashtbl.replace sites x.x_site.site_id (x.x_site, x.x_var, x.x_dir);
        bump "transfers";
        in_span Obs.Trace.Transfer x.x_site.site_label
          ~loc:(Minic.Loc.to_string x.x_site.site_loc)
          ~directive:x.x_site.site_label
        @@ fun () ->
        let host = Value.array_buf env x.x_var in
        (* Ledger attribution for the transfers this site is about to
           perform.  Redundancy is the pre-transfer coherence state of the
           destination copy, so it must be read *before* [on_transfer]
           moves the lattice. *)
        (match ledger with
        | None -> ()
        | Some _ ->
            lsite :=
              (x.x_site.site_label, Minic.Loc.to_string x.x_site.site_loc);
            lexec :=
              Option.value ~default:0
                (Hashtbl.find_opt site_execs x.x_site.site_id);
            lcause :=
              (match x.x_dir with
              | H2D -> Obs.Ledger.Copyin
              | D2H ->
                  if multi then Obs.Ledger.Gather else Obs.Ledger.Copyout);
            lredundant :=
              (if not coherence then fun _ -> false
               else
                 match x.x_dir with
                 | H2D ->
                     if multi then begin
                       let fresh =
                         List.filter
                           (fun d ->
                             Coherence.gpu_status coh x.x_var d = Not_stale)
                           (Gpusim.Device_set.alive_ids devset)
                       in
                       fun d -> List.mem d fresh
                     end
                     else begin
                       let r = Coherence.get coh x.x_var Gpu = Not_stale in
                       fun _ -> r
                     end
                 | D2H ->
                     let r = Coherence.get coh x.x_var Cpu = Not_stale in
                     fun _ -> r);
            lhoist :=
              (match x.x_dir with
              | H2D ->
                  Hashtbl.mem up_seen x.x_var
                  && not (Hashtbl.mem host_dirty x.x_var)
              | D2H ->
                  Hashtbl.mem down_seen x.x_var
                  && not (Hashtbl.mem host_fetched x.x_var)));
        if coherence then begin
          Coherence.register_len coh x.x_var (Gpusim.Buf.length host);
          Coherence.on_transfer ?range coh x.x_var x.x_dir ~site:x.x_site
        end;
        if (not !host_mode) && not (Hashtbl.mem host_only x.x_var) then begin
          let h2d0 = metrics.Gpusim.Metrics.bytes_h2d
          and d2h0 = metrics.Gpusim.Metrics.bytes_d2h in
          (* Per-member child spans: in multi mode each member's share of a
             broadcast/gather is a [Transfer] leaf on its own lane, timed
             by that member's accumulator. *)
          let member_xfer dev =
            let m = dev.Gpusim.Device.metrics in
            let t0 = m.Gpusim.Metrics.host_clock in
            do_transfer ~dev
              ~on_dev_lost:(fun fault ->
                on_member_lost dev.Gpusim.Device.id fault)
              x ~host ~range ~async;
            match obs with
            | None -> ()
            | Some tr ->
                Obs.Trace.leaf tr Obs.Trace.Transfer x.x_site.site_label
                  ~loc:(Minic.Loc.to_string x.x_site.site_loc)
                  ~directive:x.x_site.site_label ~dev:dev.Gpusim.Device.id
                  ~start:t0
                  ~duration:(m.Gpusim.Metrics.host_clock -. t0) ()
          in
          (if not multi then do_transfer x ~host ~range ~async
           else
             match x.x_dir with
             | H2D ->
                 (* Broadcast: every alive member refreshes its copy; each
                    charges its own DMA engine, so the wall-clock cost is
                    the primary's transfer (parallel broadcast). *)
                 List.iter
                   (fun dev ->
                     if
                       (not !host_mode)
                       && (not (Hashtbl.mem host_only x.x_var))
                       && Gpusim.Device.alive dev
                       && Gpusim.Device.is_allocated dev x.x_var
                     then member_xfer dev)
                   (alive_members ());
                 if
                   (not !host_mode)
                   && not (Hashtbl.mem host_only x.x_var)
                 then
                   Hashtbl.replace fresh_on x.x_var
                     (Gpusim.Device_set.alive_ids devset)
             | D2H ->
                 (* Download from a member holding a fresh copy, rotating
                    across the fresh set (every fresh copy is bit-identical
                    by construction, so the gather is charged to rotating
                    DMA engines); a member dying mid-download is replayed
                    on the next candidate. *)
                 let rec pull () =
                   let candidates =
                     match Hashtbl.find_opt fresh_on x.x_var with
                     | Some (_ :: _ as ids) ->
                         List.filter_map
                           (fun d ->
                             let dev = Gpusim.Device_set.device devset d in
                             if
                               Gpusim.Device.alive dev
                               && Gpusim.Device.is_allocated dev x.x_var
                             then Some dev
                             else None)
                           ids
                     | Some [] | None -> (
                         match Gpusim.Device_set.first_alive devset with
                         | Some dev -> [ dev ]
                         | None -> [])
                   in
                   match candidates with
                   | [] -> ()
                   | _ :: _ ->
                       let dev =
                         List.nth candidates
                           (!gather_rr mod List.length candidates)
                       in
                       incr gather_rr;
                       if Gpusim.Device.is_allocated dev x.x_var then begin
                         member_xfer dev;
                         (match ilog with
                         | None -> ()
                         | Some il ->
                             let elems =
                               match range with
                               | Some (_, len) -> len
                               | None -> Gpusim.Buf.length host
                             in
                             let per_elem =
                               Gpusim.Buf.bytes host
                               / max 1 (Gpusim.Buf.length host)
                             in
                             let bytes = elems * per_elem in
                             Obs.Imbalance.note_gather il ~bytes
                               ~time:
                                 (cmodel.Gpusim.Costmodel.pcie_latency
                                 +. float_of_int bytes
                                    /. cmodel.Gpusim.Costmodel.pcie_bandwidth));
                         if
                           (not (Gpusim.Device.alive dev))
                           && (not !host_mode)
                           && not (Hashtbl.mem host_only x.x_var)
                         then pull ()
                       end
                 in
                 pull ());
          (* The transfer satisfied whatever host access preceded it:
             reset the hoistability trackers for this array. *)
          (match x.x_dir with
          | H2D ->
              Hashtbl.replace up_seen x.x_var ();
              Hashtbl.remove host_dirty x.x_var
          | D2H ->
              Hashtbl.replace down_seen x.x_var ();
              Hashtbl.remove host_fetched x.x_var);
          (* A completed transfer leaves host and device coherent. *)
          Hashtbl.remove device_fresh x.x_var;
          (* Byte traffic becomes trace counters, so profiles (and their
             diffs) carry byte deltas alongside the time categories. *)
          match obs with
          | None -> ()
          | Some tr ->
              let dh = metrics.Gpusim.Metrics.bytes_h2d - h2d0
              and dd = metrics.Gpusim.Metrics.bytes_d2h - d2h0 in
              if dh > 0 then Obs.Trace.count tr "bytes_h2d" dh;
              if dd > 0 then Obs.Trace.count tr "bytes_d2h" dd
        end
    | Tlaunch (kid, async) ->
        let k = tp.kernels.(kid) in
        let async = eval_async async in
        charge_host ();
        bump "launches";
        in_span Obs.Trace.Kernel k.k_name
          ~loc:(Minic.Loc.to_string k.k_loc) ~directive:k.k_name
        @@ fun () -> launch_resilient k async
    | Twait e ->
        let q = eval_async e in
        charge_host ();
        in_span Obs.Trace.Wait "wait" @@ fun () ->
        if multi then
          Array.iter
            (fun dev -> Gpusim.Device.wait dev q)
            devset.Gpusim.Device_set.devices
        else Gpusim.Device.wait device q
    | Tcheck c ->
        if coherence then begin
          charge_host ();
          bump "checks";
          in_span Obs.Trace.Check
            (match c with
            | Check_read _ -> "check-read"
            | Check_write _ -> "check-write"
            | Reset_status _ -> "reset-status")
          @@ fun () ->
          (* Host checks are placed on accessed names; resolve a pointer to
             the root it currently designates. *)
          let resolve v =
            match Value.lookup env v with
            | Some (Value.Array slot) ->
                (match slot.Value.buf with
                | Some b ->
                    Coherence.register_len coh slot.Value.root
                      (Gpusim.Buf.length b)
                | None -> ());
                slot.Value.root
            | Some (Value.Scalar _) | None -> v
          in
          (match c with
          | Check_read (v, dev) ->
              let v = resolve v in
              if dev = Cpu then Hashtbl.replace host_fetched v ();
              Coherence.check_read ~sid:s.tsid coh v dev
          | Check_write (v, dev) ->
              let v = resolve v in
              if dev = Cpu then Hashtbl.replace host_dirty v ();
              Coherence.check_write ~sid:s.tsid coh v dev
          | Reset_status (v, dev, st) -> Coherence.reset_status coh v dev st);
          metrics.Gpusim.Metrics.checks <- metrics.Gpusim.Metrics.checks + 1;
          Gpusim.Metrics.charge metrics Gpusim.Metrics.Check_overhead
            cmodel.Gpusim.Costmodel.check_cost
        end
  and exec_ts b = List.iter exec_t b in

  in_span Obs.Trace.Phase "run" (fun () ->
      (try exec_ts tp.body with
      | Eval.Return_exc _ | Stop -> ());
      charge_host ();
      (* Drain outstanding async work and release device memory (both are
         no-ops on a lost device). *)
      if multi then
        Array.iter
          (fun dev ->
            Gpusim.Device.wait dev None;
            Gpusim.Device.free_all dev)
          devset.Gpusim.Device_set.devices
      else begin
        Gpusim.Device.wait device None;
        Gpusim.Device.free_all device
      end);
  { ctx; device; devset; coherence = coh; tprog = tp; site_execs; sites;
    resilience = stats; imbalance = ilog }

(** Convenience: compile and run a source string (uninstrumented unless
    [instrument] is set). *)
let run_string ?opts ?(instrument = false) ?mode ?engine ?granularity
    ?coherence ?seed ?cm ?plan ?resilience ?devices ?schedule ?obs ?ledger
    ?audit ?kcache src =
  let tp = Codegen.Translate.compile_string ?opts src in
  let tp = if instrument then Codegen.Checkgen.instrument ?mode tp else tp in
  let coherence = Option.value coherence ~default:instrument in
  run ~coherence ?engine ?granularity ?seed ?cm ?plan ?resilience ?devices
    ?schedule ?obs ?ledger ?audit ?kcache tp
