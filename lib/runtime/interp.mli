(** Interpreter for translated programs: executes host code natively,
    drives the {!Gpusim} device for data movement and kernels, and (when
    enabled) the {!Coherence} runtime for the paper's memory-transfer
    verification.

    With an armed {!Gpusim.Fault_plan} the interpreter is a resilient
    runtime: injected device faults surface as typed errors and are
    handled per the {!Resilience.policy} — bounded retry, checksum-verified
    re-transfer, checkpointed kernel re-execution validated against the
    sequential reference, and CPU fallback of the original sequential
    region. *)

type outcome = {
  ctx : Eval.ctx;  (** final host state *)
  device : Gpusim.Device.t;
  devset : Gpusim.Device_set.t;  (** the device set [device] is primary of *)
  coherence : Coherence.t;
  tprog : Codegen.Tprog.t;
  site_execs : (int, int) Hashtbl.t;  (** transfer-site id -> executions *)
  sites :
    (int, Codegen.Tprog.site * string * Codegen.Tprog.xdir) Hashtbl.t;
      (** executed transfer sites with their variable and direction *)
  resilience : Resilience.stats;  (** fault-recovery accounting *)
  imbalance : Obs.Imbalance.t option;
      (** shard-level cost attribution of every sharded launch
          (multi-device runs only) *)
}

val reports : outcome -> Coherence.report list
val metrics : outcome -> Gpusim.Metrics.t

(** Final contents of host array [name] (by root).
    @raise Value.Runtime_error when absent. *)
val host_array : outcome -> string -> Gpusim.Buf.t

val host_scalar : outcome -> string -> Value.scalar

exception Stop

(** Execute a translated program.  [coherence] enables the §III-B runtime
    (meaningful on instrumented programs); [engine] selects the kernel
    execution engine — {!Engine.Tree} (default) walks the AST,
    {!Engine.Compiled} runs closure-compiled kernel bodies (cached per
    kernel, bit-identical results); [granularity] picks whole-array
    (default, as the paper) or interval tracking; [trace] records the
    execution timeline; [seed] drives the deterministic jitter and fault
    streams; [plan] arms device faults; [resilience] picks the recovery
    policy (default {!Resilience.none}: faults propagate as
    {!Gpusim.Device.Device_fault}).

    [devices] sizes the simulated device set (default 1: the standalone
    device, on the exact pre-device-set code path); [schedule] picks how
    [parallel loop] iteration spaces split across members (default
    {!Gpusim.Device_set.Block}).  With [devices > 1] the runtime broadcasts
    allocations and uploads, shards parallel kernels across alive members,
    lazily peer-syncs kernel inputs, and — under a recovering policy —
    fails a dying member's shards over to survivors, validating every
    recovery against the sequential reference.

    [obs], when given, receives the run as a span tree stamped by the
    simulated clock — a "run" phase span with one child span per kernel
    launch / transfer / alloc / free / wait / check, [Recovery] leaves for
    every resilience action, [Device] leaves for timeline events (with
    [trace]), and one charge event per {!Gpusim.Metrics.charge} (so
    {!Obs.Profile} totals conserve exactly).  [ledger], when given,
    records every DMA transfer (cause-attributed per {!Obs.Ledger.cause},
    with per-member redundancy read from the coherence lattice when
    [coherence] is on) and every device alloc/free — pure observation,
    byte-conserving against the metrics accumulators.  [audit], when
    given, records every coherence status transition.

    [kcache], when given, is a shared content-keyed kernel-closure store
    ({!Compile.store}): compiled-engine runs of *different translations*
    (e.g. the saturate search loop's edited program variants) reuse each
    other's compiled kernels whenever the kernel body is unchanged —
    visible as [engine_compile_hits] in the [obs] counters.
    @raise Resilience.Unrecovered when the policy's budget is exhausted. *)
val run :
  ?coherence:bool -> ?engine:Engine.t ->
  ?granularity:Coherence.granularity -> ?seed:int ->
  ?trace:bool -> ?cm:Gpusim.Costmodel.t -> ?plan:Gpusim.Fault_plan.t ->
  ?resilience:Resilience.policy -> ?devices:int ->
  ?schedule:Gpusim.Device_set.schedule -> ?obs:Obs.Trace.t ->
  ?ledger:Obs.Ledger.t -> ?audit:Obs.Audit.t -> ?kcache:Compile.store ->
  Codegen.Tprog.t -> outcome

(** Compile and run a source string (instrumented when [instrument]). *)
val run_string :
  ?opts:Codegen.Options.t -> ?instrument:bool -> ?mode:Codegen.Checkgen.mode ->
  ?engine:Engine.t ->
  ?granularity:Coherence.granularity -> ?coherence:bool -> ?seed:int ->
  ?cm:Gpusim.Costmodel.t -> ?plan:Gpusim.Fault_plan.t ->
  ?resilience:Resilience.policy -> ?devices:int ->
  ?schedule:Gpusim.Device_set.schedule -> ?obs:Obs.Trace.t ->
  ?ledger:Obs.Ledger.t -> ?audit:Obs.Audit.t -> ?kcache:Compile.store ->
  string -> outcome
