(** Runtime coherence tracking (§III-B).

    Each tracked array carries one status per device in
    {notstale, maystale, stale}, at whole-buffer granularity by default (as
    in the paper) or per element range in {!Fine} mode.  The inserted
    runtime calls drive the state machine and emit the
    missing / may-missing / incorrect / redundant / may-redundant reports
    the interactive optimization loop consumes. *)

type kind = Missing | May_missing | Incorrect | Redundant | May_redundant

val kind_name : kind -> string

type report = {
  r_kind : kind;
  r_var : string;
  r_site : Codegen.Tprog.site option;
      (** transfer site, when the event is a transfer *)
  r_sid : int;  (** source statement the event traces back to (-1 unknown) *)
  r_dev : Codegen.Tprog.device option;
      (** device whose copy was stale (missing reports) *)
  r_desc : string;
  r_loops : (string * int) list;
      (** enclosing host loops, outermost first (the "enclosing loop index"
          of the paper's Listing 4) *)
}

val pp_report : Format.formatter -> report -> unit

type granularity = Coarse | Fine

type dev_state = {
  mutable status : Codegen.Tprog.status;
  mutable stale_iv : Intervals.t;
  mutable may_iv : Intervals.t;
}

type var_state = {
  cpu : dev_state;
  gpu : dev_state;  (** device 0's copy; physically [gpus.(0)] *)
  gpus : dev_state array;  (** one state per device-set member *)
  mutable len : int;
}

type t = {
  granularity : granularity;
  ndevices : int;  (** device-set size; 1 = the paper's single device *)
  alive_gpus : bool array;  (** per-device liveness, updated on loss *)
  states : (string, var_state) Hashtbl.t;
  mutable reports : report list;
  mutable loop_stack : (string * int) list;
  mutable checks_executed : int;
  mutable interval_ops : int;  (** fine-mode tracking work *)
  audit : Obs.Audit.t option;  (** records every status transition *)
  now : unit -> float;  (** simulated clock for audit timestamps *)
  mutable cur_op : string;  (** runtime call currently driving transitions *)
  mutable cur_point : string;  (** program point of that call *)
}

(** [audit], when given, receives one entry per observable status transition
    of the primary (device 0) lattice, stamped by [now] (default: the
    constant 0).  [devices] sizes the per-member GPU lattice (default 1). *)
val create :
  ?granularity:granularity -> ?audit:Obs.Audit.t -> ?now:(unit -> float) ->
  ?devices:int -> unit -> t

(** Record the element count of a variable (ranges whole-array events in
    fine mode). *)
val register_len : t -> string -> int -> unit

(** [get t v Gpu] is the pessimistic join (worst status) over the live
    members' copies of [v]; with one device, exactly that member's status. *)
val get : t -> string -> Codegen.Tprog.device -> Codegen.Tprog.status

(** A [Gpu] update addresses the whole device set: every live member's copy
    moves together. *)
val set : t -> string -> Codegen.Tprog.device -> Codegen.Tprog.status -> unit

(** {1 Per-device refinement} (driven by the device-set runtime) *)

(** Status of member device [d]'s copy. *)
val gpu_status : t -> string -> int -> Codegen.Tprog.status

(** Move one member device's copy. *)
val set_gpu : t -> string -> int -> Codegen.Tprog.status -> unit

(** A kernel committed [v] on exactly [devs]: their copies become fresh,
    every other live member's copy stale. *)
val note_kernel_write : t -> string -> devs:int list -> unit

(** A runtime-initiated peer/broadcast sync refreshed [v] on [devs]. *)
val note_gpu_fresh : t -> string -> devs:int list -> unit

(** Device [d] dropped off the bus: its resident copies are gone (stale),
    and it leaves the join. *)
val on_device_lost : t -> int -> unit

(** {1 Loop context} (for report attribution) *)

val enter_loop : t -> string -> unit
val next_iteration : t -> unit
val exit_loop : t -> unit

(** {1 The inserted runtime calls} *)

val check_read :
  ?sid:int -> ?range:int * int -> t -> string -> Codegen.Tprog.device -> unit

val check_write :
  ?sid:int -> ?range:int * int -> t -> string -> Codegen.Tprog.device -> unit

val reset_status :
  t -> string -> Codegen.Tprog.device -> Codegen.Tprog.status -> unit

(** A transfer of [v] along [dir] is happening; detects incorrect/redundant/
    may-redundant transfers and refreshes the target state. *)
val on_transfer :
  ?range:int * int -> t -> string -> Codegen.Tprog.xdir ->
  site:Codegen.Tprog.site -> unit

val on_free : t -> string -> unit

val reports : t -> report list
val reports_of_kind : t -> kind -> report list

(** Group reports per (site, kind, variable) with occurrence counts — the
    digest form for interactive display. *)
val summarize : report list -> string list
