(** Runtime values and environments for the Mini-C interpreters.

    Scalars are mutable cells; arrays are {!Gpusim.Buf} buffers held in
    mutable slots so that pointer assignment ([p = a]) rebinds the slot —
    the pointer-swap idiom of BACKPROP/LUD.  Every slot remembers the *root*
    name of the buffer it currently designates, which is the key used for
    device memory and coherence tracking. *)

type scalar = Int of int | Flt of float

let to_float = function Int n -> float_of_int n | Flt f -> f
let to_int = function Int n -> n | Flt f -> int_of_float f
let truthy = function Int n -> n <> 0 | Flt f -> f <> 0.0

type cell = { mutable v : scalar }

type slot = {
  mutable buf : Gpusim.Buf.t option;
  mutable root : string;
  mutable shape : int array;
      (** dimensions, outermost first; [||] until materialized (the buffer
          is stored flattened, row-major) *)
}

type binding = Scalar of cell | Array of slot

exception Runtime_error of string

let error fmt = Fmt.kstr (fun m -> raise (Runtime_error m)) fmt

let () =
  Printexc.register_printer (function
    | Runtime_error m -> Some ("Mini-C runtime error: " ^ m)
    | _ -> None)

(** {1 Environments}: a stack of frames over a global frame. *)

type frame = (string, binding) Hashtbl.t

type t = { globals : frame; mutable frames : frame list }

let create () = { globals = Hashtbl.create 16; frames = [ Hashtbl.create 16 ] }

(* A small pool of recycled scope frames.  [push]/[pop] pairs run once per
   executed scope — loop iterations included — so they sit on the
   interpreter's hottest path; reusing the hashtables avoids an allocation
   per scope.  A pooled frame is [Hashtbl.reset] before reuse, which
   restores its initial size-8 geometry, so it is observably identical to a
   fresh [Hashtbl.create 8].  Frames popped by [pop] are never retained by
   callers (scopes hand values out through shared cells), which is what
   makes recycling safe. *)
let frame_pool : frame list ref = ref []
let frame_pool_len = ref 0
let frame_pool_max = 64

let acquire_frame () =
  match !frame_pool with
  | f :: rest ->
      frame_pool := rest;
      decr frame_pool_len;
      f
  | [] -> Hashtbl.create 8

let release_frame f =
  if !frame_pool_len < frame_pool_max then begin
    Hashtbl.reset f;
    frame_pool := f :: !frame_pool;
    incr frame_pool_len
  end

let push env = env.frames <- acquire_frame () :: env.frames

let pop env =
  match env.frames with
  | f :: rest ->
      env.frames <- rest;
      release_frame f
  | [] -> invalid_arg "Value.pop: empty frame stack"

(** Run [f] in a fresh scope. *)
let scoped env f =
  push env;
  Fun.protect ~finally:(fun () -> pop env) f

let declare env name binding =
  match env.frames with
  | frame :: _ -> Hashtbl.replace frame name binding
  | [] -> invalid_arg "Value.declare"

let declare_global env name binding = Hashtbl.replace env.globals name binding

let lookup env name =
  let rec go = function
    | [] -> Hashtbl.find_opt env.globals name
    | frame :: rest -> (
        match Hashtbl.find_opt frame name with
        | Some b -> Some b
        | None -> go rest)
  in
  go env.frames

let lookup_exn env name =
  match lookup env name with
  | Some b -> b
  | None -> error "unbound variable '%s'" name

let scalar_cell env name =
  match lookup_exn env name with
  | Scalar c -> c
  | Array _ -> error "'%s' used as a scalar but holds an array" name

let array_slot env name =
  match lookup_exn env name with
  | Array s -> s
  | Scalar _ -> error "'%s' used as an array but holds a scalar" name

let array_buf env name =
  match (array_slot env name).buf with
  | Some b -> b
  | None -> error "array '%s' is not materialized" name

(** Root name of the buffer currently designated by array/pointer [name]. *)
let root_of env name = (array_slot env name).root

let get_scalar env name = (scalar_cell env name).v
let set_scalar env name v = (scalar_cell env name).v <- v

(** Shape of an array binding ([[|len|]] when it was never given one). *)
let shape_of slot =
  match (slot.shape, slot.buf) with
  | [||], Some b -> [| Gpusim.Buf.length b |]
  | shape, _ -> shape

(** Deep snapshot of all array contents reachable by root name, plus scalar
    values; used by kernel verification to checkpoint the reference state. *)
let snapshot_arrays env names =
  List.filter_map
    (fun name ->
      match lookup env name with
      | Some (Array { buf = Some b; _ }) -> Some (name, Gpusim.Buf.copy b)
      | _ -> None)
    names
