(** Explicit-state deterministic random stream.

    One [t] per consumer (the device's PCIe-jitter stream, the fault plan's
    injection stream) so that simulated runs are exactly reproducible from a
    single [--seed]: no [Random.self_init], no shared hidden state, and
    adding a new consumer never perturbs the draws of an existing one.

    The generator is the same 31-bit LCG the device has always used for
    jitter, so timing streams are bit-compatible with earlier versions. *)

type t = { mutable state : int; seed : int }

let create seed = { state = seed land 0x3FFFFFFF; seed }

let seed t = t.seed

(** Advance and return the raw 30-bit state. *)
let next t =
  t.state <- ((t.state * 1103515245) + 12345) land 0x3FFFFFFF;
  t.state

(** Deterministic noise in [-1, 1] (the device's PCIe jitter draw). *)
let noise t = (float_of_int (next t mod 20001) /. 10000.) -. 1.0

(** Uniform float in [0, 1). *)
let float t = float_of_int (next t) /. 1073741824.0

(** Uniform int in [0, n); [n] must be positive. *)
let int t n = if n <= 0 then 0 else next t mod n

(** A decorrelated child stream: used to give the fault plan its own stream
    derived from the run seed without consuming jitter draws. *)
let split t = create ((t.seed * 0x9E3779B1) lxor 0x5DEECE6 land 0x3FFFFFFF)
