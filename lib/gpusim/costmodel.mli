(** Analytic cost model of the simulated accelerator system (stands in for
    the paper's Xeon X5660 + Tesla M2090 testbed; see DESIGN.md §5). *)

type t = {
  pcie_latency : float;  (** seconds per transfer, fixed part *)
  pcie_bandwidth : float;  (** bytes per second *)
  pcie_jitter : float;  (** relative amplitude of transfer-time noise *)
  kernel_launch : float;  (** seconds per kernel launch *)
  gpu_parallel_width : float;  (** effective concurrent lanes *)
  gpu_op_cost : float;  (** seconds per scalar operation on one GPU lane *)
  cpu_op_cost : float;  (** seconds per scalar operation on the host *)
  alloc_cost : float;  (** seconds per device allocation *)
  free_cost : float;  (** seconds per device free *)
  alloc_byte_cost : float;  (** seconds per byte allocated *)
  check_cost : float;  (** seconds per coherence runtime check *)
  compare_op_cost : float;  (** seconds per compared element (verification) *)
}

(** The baked-in testbed constants.  Test-only hook: setting the
    [OPENARC_COSTMODEL_PERTURB] environment variable to a positive float
    scales [pcie_latency] by it (read once at module init) — the seeded
    synthetic regression the bench sentinel's self-test injects. *)
val default : t

(** Name of the perturbation environment variable
    ([OPENARC_COSTMODEL_PERTURB]). *)
val perturb_env : string

(** Transfer duration for [bytes] bytes; [noise] in [-1, 1] scales the
    jitter term (PCI-e contention variance — the source of the paper's
    small negative overheads in Figure 4). *)
val transfer_time : t -> bytes:int -> noise:float -> float

(** Kernel duration for [iterations] x [ops_per_iter] scalar operations;
    [width] caps the concurrent lanes below the device width (explicit
    num_gangs/num_workers launch dimensions). *)
val kernel_time : ?width:int -> t -> iterations:int -> ops_per_iter:int -> float

val cpu_time : t -> ops:int -> float
val alloc_time : t -> bytes:int -> float
val free_time : t -> bytes:int -> float
val compare_time : t -> elems:int -> float
