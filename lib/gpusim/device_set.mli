(** A fleet of simulated devices behind one scheduler.

    Each member owns its memory space, streams, timeline, metrics and fault
    gates; the set splits [parallel loop] iteration spaces across alive
    members block- or cyclic-wise.  Device 0 is the {e primary}: its metrics
    object is the host clock, and a one-member set behaves exactly like the
    standalone device it wraps. *)

type schedule = Block | Cyclic

val schedule_name : schedule -> string
val schedule_of_string : string -> (schedule, string) result

type t = {
  devices : Device.t array;
  schedule : schedule;
  base_plan : Fault_plan.t option;
      (** the un-partitioned plan, kept for event reporting *)
}

(** Create [n] devices.  A fault [plan] is partitioned by [#DEV] selector
    ({!Fault_plan.partition}); device 0 keeps the seed's own RNG stream so a
    one-device set reproduces the standalone device exactly. *)
val create :
  ?cm:Costmodel.t -> ?seed:int -> ?trace:bool -> ?plan:Fault_plan.t ->
  ?schedule:schedule -> int -> t

(** Wrap an existing standalone device as a one-member set. *)
val of_device : ?schedule:schedule -> Device.t -> t

val size : t -> int
val primary : t -> Device.t
val device : t -> int -> Device.t

(** Ordinals of members still on the bus, ascending. *)
val alive_ids : t -> int list

val num_alive : t -> int
val all_lost : t -> bool
val first_alive : t -> Device.t option

(** Fold every member's injected fault events (time-ordered) and loss state
    back into the base plan, so multi-device runs report like single-device
    ones.  Idempotent. *)
val flush_events : t -> unit

(** Per-member accumulated [(compute, transfer)] seconds by ordinal
    (kernel/wait vs PCIe categories of each member's own accumulator). *)
val member_times : t -> (float * float) array

(** Participant index owning iteration ordinal [i] of a [total]-iteration
    loop split across [parts] participants. *)
val owner : schedule -> parts:int -> total:int -> int -> int

(** Number of ordinals owned by participant [part]. *)
val shard_size : schedule -> parts:int -> total:int -> int -> int
