(** Execution timeline: every device-visible event with its simulated start
    time, duration and *source-level* attribution (transfer site labels,
    kernel names) — the traceability artifact the paper's Table I contrasts
    with low-level profilers.  Exports Chrome-trace JSON. *)

type kind =
  | Ev_transfer of { var : string; h2d : bool; bytes : int }
  | Ev_kernel of { name : string; iterations : int }
  | Ev_alloc of string
  | Ev_free of string
  | Ev_wait
  | Ev_check
  | Ev_fault of string  (** injected device fault (fault-kind name) *)

type event = {
  ev_kind : kind;
  ev_label : string;
  ev_start : float;  (** simulated seconds *)
  ev_duration : float;
  ev_stream : int option;
}

type t

val create : ?enabled:bool -> unit -> t

val record :
  t -> ?stream:int -> kind:kind -> label:string -> start:float ->
  duration:float -> unit -> unit

(** Install an observer invoked on every recorded event (tracing hook). *)
val set_on_event : t -> (event -> unit) -> unit

val events : t -> event list
val count : t -> int
val kind_name : kind -> string

(** Total simulated time per event kind, sorted by kind name. *)
val summary : t -> (string * float) list

(** Chrome-trace event objects, one serialized JSON object per event
    ([tid] 0 = host, stream [q] = [q + 1]).  [pid] defaults to 1. *)
val chrome_events : ?pid:int -> t -> string list

(** One Chrome lane per device-set member: every event rendered onto the
    single track [tid]; zero-duration fault events (device loss) render
    as thread-scoped instant ("i") marks. *)
val chrome_device_events : ?pid:int -> tid:int -> t -> string list

(** Chrome metadata event naming process [pid] (for merged traces). *)
val chrome_process_name : pid:int -> string -> string

(** Chrome "trace event format" JSON (chrome://tracing, Perfetto). *)
val to_chrome_json : t -> string

(** Multi-lane Chrome-trace JSON for a device set: pre-rendered [host]
    event objects on lane [tid 0] (see [Obs.Chrome.host_lane_events]),
    then member [d]'s timeline on lane [tid d + 1]. *)
val to_chrome_json_devices : ?host:string list -> t array -> string

val pp : Format.formatter -> t -> unit
