(** Typed flat buffers shared by the host and the simulated device.

    A Mini-C array variable maps to one buffer; coherence is tracked at this
    whole-buffer granularity, as in the paper (§III-B: "entire array or memory
    region allocated by a malloc call"). *)

type t = Fbuf of float array | Ibuf of int array

let length = function Fbuf a -> Array.length a | Ibuf a -> Array.length a

(** Size in simulated bytes (double = 8, int = 4, as on the paper's testbed). *)
let bytes = function
  | Fbuf a -> 8 * Array.length a
  | Ibuf a -> 4 * Array.length a

let create_float n = Fbuf (Array.make n 0.0)
let create_int n = Ibuf (Array.make n 0)

let copy = function Fbuf a -> Fbuf (Array.copy a) | Ibuf a -> Ibuf (Array.copy a)

(** Copy all of [src] into [dst]; both must have the same shape. *)
let blit ~src ~dst =
  match (src, dst) with
  | Fbuf s, Fbuf d when Array.length s = Array.length d ->
      Array.blit s 0 d 0 (Array.length s)
  | Ibuf s, Ibuf d when Array.length s = Array.length d ->
      Array.blit s 0 d 0 (Array.length s)
  | _ -> invalid_arg "Buf.blit: shape mismatch"

(** Copy the element range [lo, lo+len) of [src] into the same range of
    [dst]. Used for subarray transfers like [update host(a\[0:n\])]. *)
let blit_range ~src ~dst ~lo ~len =
  match (src, dst) with
  | Fbuf s, Fbuf d -> Array.blit s lo d lo len
  | Ibuf s, Ibuf d -> Array.blit s lo d lo len
  | _ -> invalid_arg "Buf.blit_range: shape mismatch"

let get_float b i =
  match b with Fbuf a -> a.(i) | Ibuf a -> float_of_int a.(i)

let get_int b i =
  match b with Ibuf a -> a.(i) | Fbuf a -> int_of_float a.(i)

let set_float b i v =
  match b with Fbuf a -> a.(i) <- v | Ibuf a -> a.(i) <- int_of_float v

let set_int b i v =
  match b with Ibuf a -> a.(i) <- v | Fbuf a -> a.(i) <- float_of_int v

let fill_float b v =
  match b with
  | Fbuf a -> Array.fill a 0 (Array.length a) v
  | Ibuf a -> Array.fill a 0 (Array.length a) (int_of_float v)

(** Maximum absolute elementwise difference; buffers must share shape. *)
let max_abs_diff b1 b2 =
  match (b1, b2) with
  | Fbuf a, Fbuf b when Array.length a = Array.length b ->
      let m = ref 0.0 in
      Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.(i)))) a;
      !m
  | Ibuf a, Ibuf b when Array.length a = Array.length b ->
      let m = ref 0 in
      Array.iteri (fun i x -> m := max !m (abs (x - b.(i)))) a;
      float_of_int !m
  | _ -> invalid_arg "Buf.max_abs_diff: shape mismatch"

(** Elementwise comparison under a relative-or-absolute error margin,
    optionally skipping reference elements below [min_value] (the paper's
    [minValueToCheck] configuration).  Returns the indices (up to [limit]) and
    count of elements whose difference exceeds the margin. *)
let compare ?(min_value = 0.0) ?(limit = 5) ~margin ~reference other =
  let bad = ref [] and nbad = ref 0 in
  let n = length reference in
  if length other <> n then invalid_arg "Buf.compare: shape mismatch";
  for i = 0 to n - 1 do
    let r = get_float reference i and o = get_float other i in
    if Float.abs r >= min_value then begin
      let diff = Float.abs (r -. o) in
      let tol = margin *. Float.max 1.0 (Float.abs r) in
      if diff > tol then begin
        incr nbad;
        if List.length !bad < limit then bad := i :: !bad
      end
    end
  done;
  (List.rev !bad, !nbad)

(** Flip one bit of element [idx] (fault injection: a transient device
    memory error).  Floats are flipped in their IEEE-754 bit pattern. *)
let flip_bit b ~idx ~bit =
  match b with
  | Fbuf a ->
      let bits = Int64.bits_of_float a.(idx) in
      a.(idx) <- Int64.float_of_bits (Int64.logxor bits
                                        (Int64.shift_left 1L (bit land 63)))
  | Ibuf a -> a.(idx) <- a.(idx) lxor (1 lsl (bit land 62))

(* FNV-1a over the element bit patterns. *)
let fnv h x =
  let h = Int64.logxor h x in
  Int64.mul h 0x100000001b3L

(** Order-sensitive checksum of the element range [lo, lo+len) (whole
    buffer by default); used for end-to-end transfer verification. *)
let checksum ?range b =
  let lo, len =
    match range with None -> (0, length b) | Some (lo, len) -> (lo, len)
  in
  let h = ref 0xcbf29ce484222325L in
  (match b with
  | Fbuf a ->
      for i = lo to lo + len - 1 do
        h := fnv !h (Int64.bits_of_float a.(i))
      done
  | Ibuf a ->
      for i = lo to lo + len - 1 do
        h := fnv !h (Int64.of_int a.(i))
      done);
  !h

let equal b1 b2 =
  match (b1, b2) with
  | Fbuf a, Fbuf b -> a = b
  | Ibuf a, Ibuf b -> a = b
  | (Fbuf _ | Ibuf _), _ -> false

(* Last-writer merge for sharded kernels: an element a shard wrote differs
   from the pre-launch snapshot; fold exactly those into the merge target.
   Bitwise float comparison, so NaNs and signed zeros merge faithfully. *)
let merge_diff ~reference ~src ~dst =
  match (reference, src, dst) with
  | Fbuf r, Fbuf s, Fbuf d ->
      if Array.length r <> Array.length s || Array.length s <> Array.length d
      then invalid_arg "Buf.merge_diff: shape mismatch";
      for i = 0 to Array.length s - 1 do
        if Int64.bits_of_float s.(i) <> Int64.bits_of_float r.(i) then
          d.(i) <- s.(i)
      done
  | Ibuf r, Ibuf s, Ibuf d ->
      if Array.length r <> Array.length s || Array.length s <> Array.length d
      then invalid_arg "Buf.merge_diff: shape mismatch";
      for i = 0 to Array.length s - 1 do
        if s.(i) <> r.(i) then d.(i) <- s.(i)
      done
  | (Fbuf _ | Ibuf _), _, _ -> invalid_arg "Buf.merge_diff: shape mismatch"
