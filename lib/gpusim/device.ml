(** The simulated GPU device: memory space, async streams, transfer engine.

    Data movement is performed functionally at submission time; asynchrony is
    modeled in the *timing* domain only (streams with completion times, the
    host blocking at [wait]).  This is sound for programs whose generated
    code synchronizes before dependent host accesses — which is exactly what
    the OpenARC code generator guarantees. *)

type stream = { mutable avail : float  (** completion time of queued work *) }

(** One completed DMA transfer, as seen by the data-movement ledger hook:
    fired with exactly the bytes the metrics accumulator recorded, so a
    listener conserves bytes by construction. *)
type xfer_info = {
  x_name : string;  (** buffer name *)
  x_h2d : bool;
  x_bytes : int;
  x_start : float;
  x_duration : float;
}

(** One allocation event: [m_delta] is the signed byte delta (positive
    alloc, negative free), [m_allocated] the live total after it. *)
type mem_info = {
  m_name : string;
  m_delta : int;
  m_allocated : int;
  m_time : float;
}

type t = {
  id : int;  (** ordinal within a {!Device_set} (0 when standalone) *)
  cm : Costmodel.t;
  metrics : Metrics.t;
  timeline : Timeline.t;
  mem : (string, Buf.t) Hashtbl.t;
  streams : (int, stream) Hashtbl.t;
  rng : Rng.t;  (** explicit stream for deterministic PCIe jitter *)
  plan : Fault_plan.t;  (** armed device faults (empty by default) *)
  mutable allocated_bytes : int;
  mutable peak_bytes : int;
  mutable on_xfer : (xfer_info -> unit) option;
      (** observation hook: fired after every completed upload/download *)
  mutable on_mem : (mem_info -> unit) option;
      (** observation hook: fired after every alloc/free bookkeeping *)
}

let create ?(id = 0) ?(cm = Costmodel.default) ?(seed = 42) ?(trace = false)
    ?plan () =
  let plan =
    match plan with Some p -> p | None -> Fault_plan.none ()
  in
  { id; cm; metrics = Metrics.create ();
    timeline = Timeline.create ~enabled:trace ();
    mem = Hashtbl.create 32;
    streams = Hashtbl.create 4; rng = Rng.create seed; plan;
    allocated_bytes = 0; peak_bytes = 0; on_xfer = None; on_mem = None }

let set_on_xfer dev f = dev.on_xfer <- Some f
let set_on_mem dev f = dev.on_mem <- Some f

let notify_xfer dev info =
  match dev.on_xfer with None -> () | Some f -> f info

let notify_mem dev info =
  match dev.on_mem with None -> () | Some f -> f info

(* Deterministic noise in [-1, 1]. *)
let noise dev = Rng.noise dev.rng

let stream dev q =
  match Hashtbl.find_opt dev.streams q with
  | Some s -> s
  | None ->
      let s = { avail = 0.0 } in
      Hashtbl.add dev.streams q s;
      s

exception Device_error of string

let fail fmt = Fmt.kstr (fun m -> raise (Device_error m)) fmt

(** A device fault injected by the plan: the typed error surface the
    resilient runtime recovers from (retry, re-execution, CPU fallback). *)
type fault_info = {
  f_kind : Fault_plan.kind;
  f_target : string;  (** buffer or kernel name *)
  f_op : string;  (** operation underway *)
}

exception Device_fault of fault_info

let () =
  Printexc.register_printer (function
    | Device_fault f ->
        Some
          (Fmt.str "device fault: %s on '%s' during %s"
             (Fault_plan.kind_name f.f_kind) f.f_target f.f_op)
    | _ -> None)

let alive dev = not dev.plan.Fault_plan.lost

(* Record an injected fault on the metrics and timeline (the plan already
   logged it), then build the typed error. *)
let fault_event dev kind ~target ~op =
  dev.metrics.Metrics.faults_injected <-
    dev.metrics.Metrics.faults_injected + 1;
  Timeline.record dev.timeline ~kind:(Timeline.Ev_fault (Fault_plan.kind_name kind))
    ~label:(Fmt.str "%s(%s) during %s" (Fault_plan.kind_name kind) target op)
    ~start:dev.metrics.Metrics.host_clock ~duration:0.0 ();
  { f_kind = kind; f_target = target; f_op = op }

(* Does the plan inject [kind] at this opportunity? *)
let inject dev kind ~target ~op =
  if
    Fault_plan.fire dev.plan kind ~target ~op
      ~time:dev.metrics.Metrics.host_clock
  then Some (fault_event dev kind ~target ~op)
  else None

(* Fault gate shared by every device entry point: an already-lost device
   rejects all work, and any opportunity may be the one where the device
   drops off the bus. *)
let check_lost dev ~target ~op =
  if dev.plan.Fault_plan.lost then
    raise (Device_fault { f_kind = Fault_plan.Device_lost; f_target = target;
                          f_op = op })
  else
    match inject dev Fault_plan.Device_lost ~target ~op with
    | Some f -> raise (Device_fault f)
    | None -> ()

let is_allocated dev name = Hashtbl.mem dev.mem name

let buffer dev name =
  if dev.plan.Fault_plan.lost then
    raise (Device_fault { f_kind = Fault_plan.Device_lost; f_target = name;
                          f_op = "access" });
  match Hashtbl.find_opt dev.mem name with
  | Some b -> b
  | None -> fail "device buffer '%s' is not allocated" name

(** Allocate a device buffer shaped like [like] (contents zeroed). *)
let alloc dev name ~like =
  if is_allocated dev name then fail "device buffer '%s' already allocated" name;
  check_lost dev ~target:name ~op:"alloc";
  (match inject dev Fault_plan.Oom ~target:name ~op:"alloc" with
  | Some f ->
      (* a failed cudaMalloc still costs the host its round trip *)
      Metrics.charge dev.metrics Metrics.Gpu_alloc
        (Costmodel.alloc_time dev.cm ~bytes:0);
      raise (Device_fault f)
  | None -> ());
  let b =
    match like with
    | Buf.Fbuf a -> Buf.create_float (Array.length a)
    | Buf.Ibuf a -> Buf.create_int (Array.length a)
  in
  let bytes = Buf.bytes b in
  Hashtbl.add dev.mem name b;
  dev.allocated_bytes <- dev.allocated_bytes + bytes;
  dev.peak_bytes <- max dev.peak_bytes dev.allocated_bytes;
  notify_mem dev
    { m_name = name; m_delta = bytes; m_allocated = dev.allocated_bytes;
      m_time = dev.metrics.Metrics.host_clock };
  let duration = Costmodel.alloc_time dev.cm ~bytes in
  Timeline.record dev.timeline ~kind:(Timeline.Ev_alloc name)
    ~label:(Fmt.str "cudaMalloc(%s, %dB)" name bytes)
    ~start:dev.metrics.Metrics.host_clock ~duration ();
  Metrics.charge dev.metrics Metrics.Gpu_alloc duration

(* [free] stays available on a lost device (it is the cleanup path): the
   memory is gone either way, so only the bookkeeping happens. *)
let free dev name =
  match Hashtbl.find_opt dev.mem name with
  | None -> fail "freeing unallocated device buffer '%s'" name
  | Some b ->
      let bytes = Buf.bytes b in
      Hashtbl.remove dev.mem name;
      dev.allocated_bytes <- dev.allocated_bytes - bytes;
      notify_mem dev
        { m_name = name; m_delta = -bytes;
          m_allocated = dev.allocated_bytes;
          m_time = dev.metrics.Metrics.host_clock };
      if alive dev then begin
        let duration = Costmodel.free_time dev.cm ~bytes in
        Timeline.record dev.timeline ~kind:(Timeline.Ev_free name)
          ~label:(Fmt.str "cudaFree(%s)" name)
          ~start:dev.metrics.Metrics.host_clock ~duration ();
        Metrics.charge dev.metrics Metrics.Gpu_free duration
      end

let free_all dev =
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) dev.mem [] in
  List.iter (free dev) names

(* Charge the timing of a transfer/kernel: synchronous ops block the host;
   async ops enqueue on a stream and cost the host only a submit.
   Returns the event's start time for the timeline. *)
let charge_async dev ~async ~category ~duration =
  match async with
  | None ->
      let start = dev.metrics.Metrics.host_clock in
      Metrics.charge dev.metrics category duration;
      start
  | Some q ->
      let s = stream dev q in
      let start = Float.max dev.metrics.Metrics.host_clock s.avail in
      s.avail <- start +. duration;
      (* submission overhead on the host *)
      Metrics.charge dev.metrics category (dev.cm.Costmodel.kernel_launch /. 5.);
      start

let transfer_bytes ~range buf =
  match range with
  | None -> Buf.bytes buf
  | Some (_, len) -> len * (Buf.bytes buf / max 1 (Buf.length buf))

(* Transfer-fault gate: outright failure (charged the PCIe round trip),
   partial transfer (a prefix of the range lands, then the copy aborts), or
   silent corruption (one bit of the destination range is flipped after a
   complete copy — only an end-to-end checksum can tell). *)
let transfer_faults dev name ~op ~src ~dst ~range =
  check_lost dev ~target:name ~op;
  (match inject dev Fault_plan.Xfer_fail ~target:name ~op with
  | Some f ->
      Metrics.charge dev.metrics Metrics.Mem_transfer dev.cm.Costmodel.pcie_latency;
      raise (Device_fault f)
  | None -> ());
  let lo, len =
    match range with None -> (0, Buf.length src) | Some (lo, len) -> (lo, len)
  in
  (match inject dev Fault_plan.Xfer_partial ~target:name ~op with
  | Some f ->
      Buf.blit_range ~src ~dst ~lo ~len:(len / 2);
      let bytes = transfer_bytes ~range src / 2 in
      Metrics.charge dev.metrics Metrics.Mem_transfer
        (Costmodel.transfer_time dev.cm ~bytes ~noise:(noise dev));
      raise (Device_fault f)
  | None -> ());
  fun () ->
    (* after the copy: silent corruption of the destination range *)
    match inject dev Fault_plan.Xfer_corrupt ~target:name ~op with
    | Some _ when len > 0 ->
        Buf.flip_bit dst
          ~idx:(lo + Fault_plan.rand_int dev.plan len)
          ~bit:(Fault_plan.rand_int dev.plan 52)
    | Some _ | None -> ()

(** Host-to-device copy of [host] into the device buffer [name].
    [range = Some (lo, len)] restricts to a subarray. *)
let upload dev name ~host ?range ?async ?label () =
  let dbuf = buffer dev name in
  let corrupt =
    transfer_faults dev name ~op:"upload" ~src:host ~dst:dbuf ~range
  in
  (match range with
  | None -> Buf.blit ~src:host ~dst:dbuf
  | Some (lo, len) -> Buf.blit_range ~src:host ~dst:dbuf ~lo ~len);
  corrupt ();
  let bytes = transfer_bytes ~range host in
  Metrics.record_h2d dev.metrics bytes;
  let duration = Costmodel.transfer_time dev.cm ~bytes ~noise:(noise dev) in
  let start = charge_async dev ~async ~category:Metrics.Mem_transfer ~duration in
  Timeline.record dev.timeline ?stream:async
    ~kind:(Timeline.Ev_transfer { var = name; h2d = true; bytes })
    ~label:(Option.value label ~default:(Fmt.str "memcpyin(%s)" name))
    ~start ~duration ();
  notify_xfer dev
    { x_name = name; x_h2d = true; x_bytes = bytes; x_start = start;
      x_duration = duration }

(** Device-to-host copy of the device buffer [name] into [host]. *)
let download dev name ~host ?range ?async ?label () =
  let dbuf = buffer dev name in
  let corrupt =
    transfer_faults dev name ~op:"download" ~src:dbuf ~dst:host ~range
  in
  (match range with
  | None -> Buf.blit ~src:dbuf ~dst:host
  | Some (lo, len) -> Buf.blit_range ~src:dbuf ~dst:host ~lo ~len);
  corrupt ();
  let bytes = transfer_bytes ~range dbuf in
  Metrics.record_d2h dev.metrics bytes;
  let duration = Costmodel.transfer_time dev.cm ~bytes ~noise:(noise dev) in
  let start = charge_async dev ~async ~category:Metrics.Mem_transfer ~duration in
  Timeline.record dev.timeline ?stream:async
    ~kind:(Timeline.Ev_transfer { var = name; h2d = false; bytes })
    ~label:(Option.value label ~default:(Fmt.str "memcpyout(%s)" name))
    ~start ~duration ();
  notify_xfer dev
    { x_name = name; x_h2d = false; x_bytes = bytes; x_start = start;
      x_duration = duration }

(** Fault gate called before a kernel's functional execution: launch
    errors, watchdog timeouts, and device loss all surface here, before any
    device memory is touched.
    @raise Device_fault when the plan injects a launch-time fault. *)
let begin_launch dev ~label =
  check_lost dev ~target:label ~op:"launch";
  (match inject dev Fault_plan.Launch_fail ~target:label ~op:"launch" with
  | Some f ->
      (* a failed launch costs the submission overhead *)
      Metrics.charge dev.metrics Metrics.Async_wait dev.cm.Costmodel.kernel_launch;
      raise (Device_fault f)
  | None -> ());
  match inject dev Fault_plan.Launch_timeout ~target:label ~op:"launch" with
  | Some f ->
      (* the watchdog lets the kernel hang for a while before killing it *)
      Metrics.charge dev.metrics Metrics.Async_wait
        (100.0 *. dev.cm.Costmodel.kernel_launch);
      raise (Device_fault f)
  | None -> ()

(** Simulated ECC scrub of the named buffers (called after a kernel's
    functional execution): the plan may flip one bit per armed rule, and
    every flip is detected and returned — the DED half of ECC; silent
    corruption is modeled by [Xfer_corrupt] instead.  Unallocated names are
    skipped. *)
let scrub dev names =
  List.filter_map
    (fun name ->
      match Hashtbl.find_opt dev.mem name with
      | None -> None
      | Some b ->
          if Buf.length b > 0
             && Fault_plan.fire dev.plan Fault_plan.Bit_flip ~target:name
                  ~op:"scrub" ~time:dev.metrics.Metrics.host_clock
          then begin
            Buf.flip_bit b
              ~idx:(Fault_plan.rand_int dev.plan (Buf.length b))
              ~bit:(Fault_plan.rand_int dev.plan 52);
            Some (fault_event dev Fault_plan.Bit_flip ~target:name ~op:"scrub")
          end
          else None)
    names

(** Account for a kernel execution of [iterations] x [ops_per_iter],
    returning the charged (jitter-scaled) duration.  The functional
    execution is done by the runtime interpreter; this charges simulated
    time.  [time] overrides the cost-model base duration — the sharded
    launch path prices each member's shard by its measured share of the
    interpreted work — while the jitter draw and charge/timeline paths
    stay identical to the standalone formula. *)
let launch_timed dev ~iterations ~ops_per_iter ?width ?time ?(jitter = true)
    ?async ?(label = "kernel") () =
  dev.metrics.Metrics.kernel_launches <-
    dev.metrics.Metrics.kernel_launches + 1;
  let duration =
    match time with
    | Some t -> t
    | None -> Costmodel.kernel_time ?width dev.cm ~iterations ~ops_per_iter
  in
  (* Small run-to-run variance, as on real devices; this is what makes very
     light instrumentation occasionally measure as a negative overhead
     (paper Figure 4).  [jitter:false] keeps the duration exactly as
     priced — the sharded launch path uses it so a schedule's measured
     wall time equals the analyzer's noise-free re-costing. *)
  let duration =
    if jitter then duration *. (1.0 +. (0.06 *. noise dev)) else duration
  in
  let start =
    match async with
    | None ->
        let start = dev.metrics.Metrics.host_clock in
        Metrics.charge dev.metrics Metrics.Async_wait duration;
        start
    | Some _ -> charge_async dev ~async ~category:Metrics.Cpu_time ~duration
  in
  Timeline.record dev.timeline ?stream:async
    ~kind:(Timeline.Ev_kernel { name = label; iterations })
    ~label:(Fmt.str "%s<<<%d>>>" label iterations)
    ~start ~duration ();
  duration

(** [launch_timed] for callers that don't consume the duration; the RNG
    draw sequence is identical. *)
let launch dev ~iterations ~ops_per_iter ?width ?async ?label () =
  ignore
    (launch_timed dev ~iterations ~ops_per_iter ?width ?async ?label ()
      : float)

(** Push stream [q]'s completion time out by [dt] simulated seconds: the
    completion barrier of a sharded async launch — the primary's queue
    cannot drain before the slowest member's shard does. *)
let delay_stream dev q dt =
  if alive dev && dt > 0.0 then begin
    let s = stream dev q in
    s.avail <- Float.max s.avail dev.metrics.Metrics.host_clock +. dt
  end

(** Block the host until stream [q] (or all streams when [None]) drains.
    Waiting on a lost device returns immediately: there is no work left to
    wait for. *)
let wait dev q =
  if not (alive dev) then ()
  else
  let streams =
    match q with
    | Some q -> [ stream dev q ]
    | None -> Hashtbl.fold (fun _ s acc -> s :: acc) dev.streams []
  in
  let target =
    List.fold_left (fun acc s -> Float.max acc s.avail)
      dev.metrics.Metrics.host_clock streams
  in
  let dt = target -. dev.metrics.Metrics.host_clock in
  if dt > 0.0 then begin
    Timeline.record dev.timeline ~kind:Timeline.Ev_wait ~label:"wait"
      ~start:dev.metrics.Metrics.host_clock ~duration:dt ();
    Metrics.charge dev.metrics Metrics.Async_wait dt
  end
