(** Simulated-time and traffic accounting.

    Every simulator action charges time to one of the categories below; the
    categories are exactly the stacked components of the paper's Figure 3,
    plus kernel-execution time (which, being asynchronous, surfaces as
    [Async_wait] when the host blocks on it). *)

type category =
  | Cpu_time  (** host computation *)
  | Mem_transfer  (** CPU <-> GPU transfers the host waited on *)
  | Gpu_alloc
  | Gpu_free
  | Async_wait  (** host blocked on asynchronous GPU work *)
  | Result_comp  (** kernel-verification output comparison *)
  | Check_overhead  (** coherence runtime checks *)
  | Fault_recovery
      (** resilience work: retry backoff, checksum re-verification,
          checkpointing, recovery validation *)

let all_categories =
  [ Cpu_time; Mem_transfer; Gpu_alloc; Gpu_free; Async_wait; Result_comp;
    Check_overhead; Fault_recovery ]

let category_index = function
  | Cpu_time -> 0
  | Mem_transfer -> 1
  | Gpu_alloc -> 2
  | Gpu_free -> 3
  | Async_wait -> 4
  | Result_comp -> 5
  | Check_overhead -> 6
  | Fault_recovery -> 7

let num_categories = List.length all_categories

let category_name = function
  | Cpu_time -> "CPU Time"
  | Mem_transfer -> "Mem Transfer"
  | Gpu_alloc -> "GPU Mem Alloc"
  | Gpu_free -> "GPU Mem Free"
  | Async_wait -> "Async-Wait"
  | Result_comp -> "Result-Comp"
  | Check_overhead -> "Check-Overhead"
  | Fault_recovery -> "Fault-Recovery"

type t = {
  times : float array;  (** indexed by [category_index] *)
  mutable bytes_h2d : int;
  mutable bytes_d2h : int;
  mutable transfers_h2d : int;
  mutable transfers_d2h : int;
  mutable kernel_launches : int;
  mutable checks : int;
  mutable faults_injected : int;  (** device faults injected by the plan *)
  mutable host_clock : float;  (** simulated wall clock of the host thread *)
  mutable on_charge : (category -> float -> unit) option;
      (** observer called after each charge (tracing) *)
}

let create () =
  { times = Array.make num_categories 0.0;
    bytes_h2d = 0; bytes_d2h = 0; transfers_h2d = 0; transfers_d2h = 0;
    kernel_launches = 0; checks = 0; faults_injected = 0; host_clock = 0.0;
    on_charge = None }

let reset m =
  Array.fill m.times 0 num_categories 0.0;
  m.bytes_h2d <- 0; m.bytes_d2h <- 0;
  m.transfers_h2d <- 0; m.transfers_d2h <- 0;
  m.kernel_launches <- 0; m.checks <- 0; m.faults_injected <- 0;
  m.host_clock <- 0.0

let set_on_charge m f = m.on_charge <- Some f

(** Charge [dt] seconds of host time to [cat] and advance the host clock. *)
let charge m cat dt =
  let i = category_index cat in
  m.times.(i) <- m.times.(i) +. dt;
  m.host_clock <- m.host_clock +. dt;
  match m.on_charge with None -> () | Some f -> f cat dt

let time_of m cat = m.times.(category_index cat)

let total_time m = Array.fold_left ( +. ) 0.0 m.times

let total_bytes m = m.bytes_h2d + m.bytes_d2h

let record_h2d m bytes =
  m.bytes_h2d <- m.bytes_h2d + bytes;
  m.transfers_h2d <- m.transfers_h2d + 1

let record_d2h m bytes =
  m.bytes_d2h <- m.bytes_d2h + bytes;
  m.transfers_d2h <- m.transfers_d2h + 1

let pp ppf m =
  Fmt.pf ppf "@[<v>total %.6f s (%d B h2d in %d xfers, %d B d2h in %d xfers, %d launches, %d checks%s)"
    (total_time m) m.bytes_h2d m.transfers_h2d m.bytes_d2h m.transfers_d2h
    m.kernel_launches m.checks
    (if m.faults_injected > 0 then Fmt.str ", %d faults" m.faults_injected
     else "");
  List.iter
    (fun c ->
      let t = time_of m c in
      if t > 0.0 then Fmt.pf ppf "@,  %-14s %.6f s" (category_name c) t)
    all_categories;
  Fmt.pf ppf "@]"
