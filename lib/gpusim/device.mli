(** The simulated GPU device: memory space, async streams, transfer engine,
    and cost accounting.

    Data movement happens functionally at submission time; asynchrony is
    modeled in the timing domain (streams with completion times, the host
    blocking at {!wait}).  All timing flows into {!Metrics} and, when
    tracing is enabled, the {!Timeline}. *)

type stream = { mutable avail : float }

(** One completed DMA transfer, as seen by the data-movement ledger hook:
    fired with exactly the bytes the metrics accumulator recorded, so a
    listener conserves bytes by construction. *)
type xfer_info = {
  x_name : string;  (** buffer name *)
  x_h2d : bool;
  x_bytes : int;
  x_start : float;
  x_duration : float;
}

(** One allocation event: [m_delta] is the signed byte delta (positive
    alloc, negative free), [m_allocated] the live total after it. *)
type mem_info = {
  m_name : string;
  m_delta : int;
  m_allocated : int;
  m_time : float;
}

type t = {
  id : int;  (** ordinal within a {!Device_set} (0 when standalone) *)
  cm : Costmodel.t;
  metrics : Metrics.t;
  timeline : Timeline.t;
  mem : (string, Buf.t) Hashtbl.t;
  streams : (int, stream) Hashtbl.t;
  rng : Rng.t;  (** explicit stream for deterministic PCIe jitter *)
  plan : Fault_plan.t;  (** armed device faults (empty by default) *)
  mutable allocated_bytes : int;
  mutable peak_bytes : int;
  mutable on_xfer : (xfer_info -> unit) option;
      (** observation hook: fired after every completed upload/download *)
  mutable on_mem : (mem_info -> unit) option;
      (** observation hook: fired after every alloc/free bookkeeping *)
}

(** Install the transfer observation hook: called after every completed
    {!upload}/{!download} with the same byte count the metrics recorded.
    Injected transfer faults that abort the copy do not fire it. *)
val set_on_xfer : t -> (xfer_info -> unit) -> unit

(** Install the allocation observation hook: called after every
    {!alloc}/{!free} bookkeeping update (frees fire even on a lost
    device — the cleanup path still releases memory). *)
val set_on_mem : t -> (mem_info -> unit) -> unit

(** Host-side misuse (double alloc, unallocated buffer): a programming
    error, not a recoverable fault. *)
exception Device_error of string

(** A device fault injected by the plan: the typed error surface the
    resilient runtime recovers from (retry, re-execution, CPU fallback). *)
type fault_info = {
  f_kind : Fault_plan.kind;
  f_target : string;  (** buffer or kernel name *)
  f_op : string;  (** operation underway: "alloc", "upload", "launch", ... *)
}

exception Device_fault of fault_info

val create :
  ?id:int -> ?cm:Costmodel.t -> ?seed:int -> ?trace:bool ->
  ?plan:Fault_plan.t -> unit -> t

(** Has the device {e not} been lost to a [Device_lost] fault? *)
val alive : t -> bool

val is_allocated : t -> string -> bool

(** @raise Device_error when the buffer is not allocated.
    @raise Device_fault when the device has been lost. *)
val buffer : t -> string -> Buf.t

(** Allocate a device buffer shaped like [like] (zeroed).
    @raise Device_error on double allocation.
    @raise Device_fault on injected OOM or device loss. *)
val alloc : t -> string -> like:Buf.t -> unit

val free : t -> string -> unit
val free_all : t -> unit

(** Host-to-device copy into buffer [name]; [range = (lo, len)] restricts to
    a subarray; [async] enqueues on a stream (timing only); [label] is the
    timeline attribution. *)
val upload :
  t -> string -> host:Buf.t -> ?range:int * int -> ?async:int ->
  ?label:string -> unit -> unit

val download :
  t -> string -> host:Buf.t -> ?range:int * int -> ?async:int ->
  ?label:string -> unit -> unit

(** Launch-time fault gate, called by the runtime {e before} the kernel's
    functional execution.
    @raise Device_fault on injected launch failure, timeout, or device
    loss. *)
val begin_launch : t -> label:string -> unit

(** Account for a kernel execution (the functional work is done by the
    runtime's kernel executor), returning the charged duration.  [width]
    caps parallel lanes; [time] overrides the cost-model base duration —
    the sharded launch path prices each member's shard by its measured
    share of the interpreted work; [jitter] (default [true]) applies the
    run-to-run variance factor — sharded launches disable it so measured
    wall time matches the schedule analyzer's noise-free re-costing. *)
val launch_timed :
  t -> iterations:int -> ops_per_iter:int -> ?width:int -> ?time:float ->
  ?jitter:bool -> ?async:int -> ?label:string -> unit -> float

(** {!launch_timed} for callers that don't consume the duration; the RNG
    draw sequence is identical. *)
val launch :
  t -> iterations:int -> ops_per_iter:int -> ?width:int -> ?async:int ->
  ?label:string -> unit -> unit

(** Push stream [q]'s completion time out by [dt] simulated seconds (the
    completion barrier of a sharded async launch).  No-op on a lost
    device or for [dt <= 0]. *)
val delay_stream : t -> int -> float -> unit

(** ECC scrub of the named device buffers after a kernel execution:
    injects any armed [Bit_flip] faults (flipping a real bit in device
    memory) and returns them as {e detected} errors — the simulator's
    model of ECC double-error detection.  Never raises. *)
val scrub : t -> string list -> fault_info list

(** Block the host until stream [q] (or all streams when [None]) drains. *)
val wait : t -> int option -> unit
