(** Typed flat buffers shared by the host and the simulated device.

    A Mini-C array variable maps to one buffer; coherence is tracked at this
    whole-buffer granularity by default, as in the paper (§III-B). *)

type t = Fbuf of float array | Ibuf of int array

val length : t -> int

(** Size in simulated bytes (double = 8, int = 4). *)
val bytes : t -> int

val create_float : int -> t
val create_int : int -> t
val copy : t -> t

(** Copy all of [src] into [dst]; both must have the same shape.
    @raise Invalid_argument on shape mismatch. *)
val blit : src:t -> dst:t -> unit

(** Copy the element range [lo, lo+len) of [src] into the same range of
    [dst] (subarray transfers like [update host(a[0:n])]). *)
val blit_range : src:t -> dst:t -> lo:int -> len:int -> unit

val get_float : t -> int -> float
val get_int : t -> int -> int
val set_float : t -> int -> float -> unit
val set_int : t -> int -> int -> unit
val fill_float : t -> float -> unit

(** Maximum absolute elementwise difference; buffers must share shape. *)
val max_abs_diff : t -> t -> float

(** Elementwise comparison under a relative-or-absolute error margin,
    optionally skipping reference elements below [min_value] (the paper's
    [minValueToCheck]).  Returns up to [limit] offending indices and the
    total count of elements beyond the margin. *)
val compare :
  ?min_value:float -> ?limit:int -> margin:float -> reference:t -> t ->
  int list * int

(** Flip one bit of element [idx] (fault injection: a transient device
    memory error).  Floats are flipped in their IEEE-754 bit pattern. *)
val flip_bit : t -> idx:int -> bit:int -> unit

(** Order-sensitive FNV-1a checksum of the element range [lo, lo+len)
    (whole buffer by default); used for transfer verification. *)
val checksum : ?range:int * int -> t -> int64

val equal : t -> t -> bool

(** Last-writer merge for sharded kernels: every element of [src] that
    differs (bitwise) from [reference] — the pre-launch snapshot — is copied
    into [dst].  All three buffers must share shape. *)
val merge_diff : reference:t -> src:t -> dst:t -> unit
