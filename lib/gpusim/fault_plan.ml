(** Seeded, deterministic device-fault plans.

    A plan is a list of rules, each arming one fault kind against an
    optional target (a buffer name for memory/transfer faults, a kernel
    name for launch faults) with a firing probability and a budget of
    injections.  The device consults the plan at every fault opportunity
    (allocation, transfer, launch, ECC scrub); all randomness comes from an
    explicit {!Rng.t} stream derived from the run seed, so a faulty run is
    exactly reproducible from [--seed] and the spec string.

    Spec grammar (comma-separated rules):
    {v
      RULE  := KIND [ ':' TARGET ] [ '@' PROB ] [ 'x' COUNT ] [ '#' DEV ]
      KIND  := bitflip | xfer-fail | xfer-partial | xfer-corrupt
             | launch-fail | launch-timeout | oom | device-lost
      PROB  := float in (0, 1]          (default 1.0)
      COUNT := positive int | '*'       (default 1; '*' = unlimited)
      DEV   := device ordinal >= 0      (default: device 0)
    v}
    Examples: ["xfer-fail x2"], ["bitflip:a@0.5x*"], ["device-lost#1"],
    ["oomx3,launch-fail:main_kernel0"].  The [#DEV] selector arms the rule
    against one member of a multi-device set ({!Device_set}); rules without
    a selector arm against device 0, matching the single-device runtime. *)

type kind =
  | Bit_flip  (** transient bit flip in a resident device buffer *)
  | Xfer_fail  (** host<->device transfer fails outright *)
  | Xfer_partial  (** transfer aborts after moving a prefix *)
  | Xfer_corrupt  (** transfer completes but silently corrupts data *)
  | Launch_fail  (** kernel launch error *)
  | Launch_timeout  (** kernel watchdog timeout *)
  | Oom  (** device allocation failure *)
  | Device_lost  (** whole device drops off the bus *)

let all_kinds =
  [ Bit_flip; Xfer_fail; Xfer_partial; Xfer_corrupt; Launch_fail;
    Launch_timeout; Oom; Device_lost ]

let kind_name = function
  | Bit_flip -> "bitflip"
  | Xfer_fail -> "xfer-fail"
  | Xfer_partial -> "xfer-partial"
  | Xfer_corrupt -> "xfer-corrupt"
  | Launch_fail -> "launch-fail"
  | Launch_timeout -> "launch-timeout"
  | Oom -> "oom"
  | Device_lost -> "device-lost"

let kind_of_name s =
  List.find_opt (fun k -> kind_name k = s) all_kinds

(** Is recovery a matter of trying the same operation again? *)
let transient = function
  | Bit_flip | Xfer_fail | Xfer_partial | Xfer_corrupt | Launch_fail
  | Launch_timeout | Oom -> true
  | Device_lost -> false

type rule = {
  r_kind : kind;
  r_target : string option;  (** buffer/kernel name; [None] = any *)
  r_prob : float;
  r_count : int;  (** max injections; negative = unlimited *)
  r_dev : int option;  (** device ordinal in a device set; [None] = dev 0 *)
  mutable r_fired : int;
}

type event = {
  e_kind : kind;
  e_target : string;  (** buffer or kernel the fault hit *)
  e_op : string;  (** operation underway, e.g. ["upload"] *)
  e_time : float;  (** simulated host clock at injection *)
}

type t = {
  rng : Rng.t;
  rules : rule list;
  mutable events : event list;  (** reversed *)
  mutable lost : bool;  (** a [Device_lost] fault has fired *)
}

let mk_rule ?target ?(prob = 1.0) ?(count = 1) ?dev r_kind =
  { r_kind; r_target = target; r_prob = prob; r_count = count; r_dev = dev;
    r_fired = 0 }

let create ?(seed = 42) rules =
  { rng = Rng.split (Rng.create seed); rules; events = []; lost = false }

let none () = create []

let is_empty t = t.rules = []

let events t = List.rev t.events

let injected t = List.length t.events

(** Deterministic site pick (bit index, element index, ...). *)
let rand_int t n = Rng.int t.rng n

(* ------------------------------ firing ------------------------------ *)

let rule_matches r k ~target =
  r.r_kind = k
  && (match r.r_target with
     | None | Some "*" -> true
     | Some t -> t = target)
  && (r.r_count < 0 || r.r_fired < r.r_count)

(** Should a fault of [k] hit [target] during [op] now?  Draws from the
    plan's RNG stream when a rule is armed; logs the event when it fires. *)
let fire t k ~target ~op ~time =
  match List.find_opt (fun r -> rule_matches r k ~target) t.rules with
  | None -> false
  | Some r ->
      let hit = r.r_prob >= 1.0 || Rng.float t.rng < r.r_prob in
      if hit then begin
        r.r_fired <- r.r_fired + 1;
        t.events <- { e_kind = k; e_target = target; e_op = op;
                      e_time = time } :: t.events;
        if k = Device_lost then t.lost <- true
      end;
      hit

(* ------------------------------ specs ------------------------------ *)

(** Largest device ordinal any rule names; [None] when every rule is
    device-0 implicit.  The CLI validates this against [--devices]. *)
let max_dev t =
  List.fold_left
    (fun acc r ->
      match (r.r_dev, acc) with
      | None, acc -> acc
      | Some d, None -> Some d
      | Some d, Some m -> Some (max d m))
    None t.rules

(** The device ordinal a rule is armed against (default 0). *)
let rule_dev r = match r.r_dev with None -> 0 | Some d -> d

(** Split a plan across [devices] members of a device set: device [d]
    receives the rules armed against it, with an RNG stream derived from
    [seed] and [d] (device 0 keeps the stream of [seed] itself, so a
    single-device run of a selector-free spec is unchanged).  The returned
    plans share nothing; each device's gates consult only its own. *)
let partition ~seed ~devices t =
  Array.init devices (fun d ->
      let rules =
        List.filter (fun r -> rule_dev r = d) t.rules
        |> List.map (fun r -> { r with r_fired = 0 })
      in
      create ~seed:(if d = 0 then seed else seed + (1000003 * d)) rules)

let spec_of_rule r =
  let target = match r.r_target with None -> "" | Some t -> ":" ^ t in
  let prob = if r.r_prob >= 1.0 then "" else Fmt.str "@%g" r.r_prob in
  let count =
    if r.r_count = 1 then ""
    else if r.r_count < 0 then "x*"
    else Fmt.str "x%d" r.r_count
  in
  let dev = match r.r_dev with None -> "" | Some d -> Fmt.str "#%d" d in
  kind_name r.r_kind ^ target ^ prob ^ count ^ dev

let to_spec t = String.concat "," (List.map spec_of_rule t.rules)

let parse_rule s =
  let s = String.trim s in
  if s = "" then Error "empty rule"
  else begin
    (* split the trailing #DEV, then xCOUNT, then @PROB, then :TARGET *)
    let s, dev =
      match String.rindex_opt s '#' with
      | Some i -> (
          let tail = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt tail with
          | Some d when d >= 0 -> (String.trim (String.sub s 0 i), Ok (Some d))
          | Some _ | None ->
              (s, Error (Fmt.str "device ordinal must be >= 0 in %S" s)))
      | None -> (s, Ok None)
    in
    let body, count =
      match String.rindex_opt s 'x' with
      | Some i when i > 0 -> (
          let tail = String.sub s (i + 1) (String.length s - i - 1) in
          if tail = "*" then (String.trim (String.sub s 0 i), Ok (-1))
          else
            match int_of_string_opt tail with
            | Some n when n > 0 -> (String.trim (String.sub s 0 i), Ok n)
            | Some _ -> (s, Error (Fmt.str "count must be positive in %S" s))
            | None -> (s, Ok 1) (* 'x' was part of a name *))
      | _ -> (s, Ok 1)
    in
    let body, prob =
      match String.index_opt body '@' with
      | None -> (body, Ok 1.0)
      | Some i -> (
          let tail =
            String.sub body (i + 1) (String.length body - i - 1)
          in
          match float_of_string_opt tail with
          | Some p when p > 0.0 && p <= 1.0 -> (String.sub body 0 i, Ok p)
          | Some _ | None ->
              (body, Error (Fmt.str "probability must be in (0,1] in %S" s)))
    in
    let body, target =
      match String.index_opt body ':' with
      | None -> (body, None)
      | Some i ->
          (String.sub body 0 i,
           Some (String.sub body (i + 1) (String.length body - i - 1)))
    in
    match (kind_of_name (String.trim body), prob, count, dev) with
    | _, Error e, _, _ | _, _, Error e, _ | _, _, _, Error e -> Error e
    | None, _, _, _ ->
        Error
          (Fmt.str "unknown fault kind %S (expected %s)" (String.trim body)
             (String.concat "|" (List.map kind_name all_kinds)))
    | Some k, Ok prob, Ok count, Ok dev ->
        Ok (mk_rule ?target ~prob ~count ?dev k)
  end

let of_spec ?seed spec =
  let parts =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty fault spec"
  else
    let rec go acc = function
      | [] -> Ok (create ?seed (List.rev acc))
      | p :: rest -> (
          match parse_rule p with
          | Ok r -> go (r :: acc) rest
          | Error e -> Error e)
    in
    go [] parts

let pp_event ppf e =
  Fmt.pf ppf "%.6fs %s on %s during %s" e.e_time (kind_name e.e_kind)
    e.e_target e.e_op
