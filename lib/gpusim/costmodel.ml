(** Analytic cost model of the simulated accelerator system.

    Stands in for the paper's testbed (Intel Xeon X5660 + NVIDIA Tesla M2090
    over PCI-e).  Absolute values are not meant to match the paper; the
    *ratios* (PCIe latency vs bandwidth, CPU vs GPU throughput, launch
    overhead) are chosen so the evaluation reproduces the paper's shapes:
    transfer-bound naive schemes blow up (Figure 1), kernel verification costs
    a few CPU-times (Figure 3), and coherence checks are noise (Figure 4). *)

type t = {
  pcie_latency : float;  (** seconds per transfer, fixed part *)
  pcie_bandwidth : float;  (** bytes per second *)
  pcie_jitter : float;  (** relative amplitude of transfer-time noise *)
  kernel_launch : float;  (** seconds per kernel launch *)
  gpu_parallel_width : float;  (** effective concurrent lanes *)
  gpu_op_cost : float;  (** seconds per scalar operation on one GPU lane *)
  cpu_op_cost : float;  (** seconds per scalar operation on the host *)
  alloc_cost : float;  (** seconds per device allocation *)
  free_cost : float;  (** seconds per device free *)
  alloc_byte_cost : float;  (** seconds per byte allocated *)
  check_cost : float;  (** seconds per coherence runtime check *)
  compare_op_cost : float;  (** seconds per compared element (verification) *)
}

(* Test-only hook for the bench regression sentinel's self-test: when
   OPENARC_COSTMODEL_PERTURB is set to a positive float, the PCIe fixed
   latency is scaled by it, seeding a synthetic transfer-side slowdown
   that `bench regress` must flag.  Unset (the normal case) the model is
   exactly the constants below. *)
let perturb_env = "OPENARC_COSTMODEL_PERTURB"

let perturb_scale () =
  match Sys.getenv_opt perturb_env with
  | None -> 1.0
  | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ -> 1.0)

let default =
  {
    pcie_latency = 10e-6 *. perturb_scale ();
    pcie_bandwidth = 8e9;
    pcie_jitter = 0.15;
    kernel_launch = 5e-6;
    gpu_parallel_width = 512.;
    gpu_op_cost = 1.2e-9;
    cpu_op_cost = 1.0e-9;
    alloc_cost = 3e-6;
    free_cost = 1.5e-6;
    alloc_byte_cost = 1e-12;
    check_cost = 8e-8;
    compare_op_cost = 6.0e-9;
  }

(** Transfer duration for [bytes] bytes; [noise] in [-1, 1] scales jitter.
    The jitter models PCI-e contention variance, the source of the paper's
    small negative overheads in Figure 4. *)
let transfer_time cm ~bytes ~noise =
  let base = cm.pcie_latency +. (float_of_int bytes /. cm.pcie_bandwidth) in
  base *. (1. +. (cm.pcie_jitter *. noise))

(** GPU kernel duration for [iterations] iterations of a body costing
    [ops_per_iter] scalar operations.  [width] caps the concurrent lanes
    (a kernel launched with explicit num_gangs/num_workers dimensions may
    use fewer lanes than the device offers). *)
let kernel_time ?width cm ~iterations ~ops_per_iter =
  let iters = float_of_int (max 1 iterations) in
  let device_width =
    match width with
    | Some w when w > 0 -> Float.min cm.gpu_parallel_width (float_of_int w)
    | _ -> cm.gpu_parallel_width
  in
  let lanes = Float.min device_width iters in
  cm.kernel_launch
  +. (iters *. float_of_int (max 1 ops_per_iter) *. cm.gpu_op_cost /. lanes)

let cpu_time cm ~ops = float_of_int (max 0 ops) *. cm.cpu_op_cost

let alloc_time cm ~bytes =
  cm.alloc_cost +. (float_of_int bytes *. cm.alloc_byte_cost)

let free_time cm ~bytes = cm.free_cost +. (float_of_int bytes *. 0.25 *. cm.alloc_byte_cost)

let compare_time cm ~elems = float_of_int elems *. cm.compare_op_cost
