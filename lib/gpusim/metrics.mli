(** Simulated-time and traffic accounting.  The categories are exactly the
    stacked components of the paper's Figure 3, plus the coherence-check
    overhead of Figure 4. *)

type category =
  | Cpu_time  (** host computation *)
  | Mem_transfer  (** CPU <-> GPU transfers the host waited on *)
  | Gpu_alloc
  | Gpu_free
  | Async_wait  (** host blocked on asynchronous GPU work *)
  | Result_comp  (** kernel-verification output comparison *)
  | Check_overhead  (** coherence runtime checks *)
  | Fault_recovery
      (** resilience work: retry backoff, checksum re-verification,
          checkpointing, recovery validation *)

val all_categories : category list
val category_name : category -> string

(** Dense index of a category into the per-category totals array; covers
    [0 .. num_categories - 1] in [all_categories] order. *)
val category_index : category -> int

val num_categories : int

type t = {
  times : float array;  (** per-category totals, indexed by [category_index] *)
  mutable bytes_h2d : int;
  mutable bytes_d2h : int;
  mutable transfers_h2d : int;
  mutable transfers_d2h : int;
  mutable kernel_launches : int;
  mutable checks : int;
  mutable faults_injected : int;  (** device faults injected by the plan *)
  mutable host_clock : float;  (** simulated wall clock of the host thread *)
  mutable on_charge : (category -> float -> unit) option;
      (** observer called after each charge (tracing) *)
}

val create : unit -> t
val reset : t -> unit

(** Install an observer invoked after every [charge] (tracing hook). *)
val set_on_charge : t -> (category -> float -> unit) -> unit

(** Charge [dt] seconds of host time to a category and advance the clock. *)
val charge : t -> category -> float -> unit

val time_of : t -> category -> float
val total_time : t -> float
val total_bytes : t -> int
val record_h2d : t -> int -> unit
val record_d2h : t -> int -> unit
val pp : Format.formatter -> t -> unit
