(** A fleet of simulated devices behind one scheduler.

    Each member device owns its memory space, streams, timeline, metrics and
    fault gates; the set splits [parallel loop] iteration spaces across the
    alive members block- or cyclic-wise (the JACC splitting strategies).
    Device 0 is the {e primary}: its metrics object is the host clock, and a
    one-device set behaves exactly like the standalone device it wraps.

    Fault plans are partitioned by each rule's [#DEV] selector
    ({!Fault_plan.partition}); {!flush_events} folds every member's injected
    events back into the base plan so reports and reproduction recipes stay
    complete in multi-device runs. *)

type schedule = Block | Cyclic

let schedule_name = function Block -> "block" | Cyclic -> "cyclic"

let schedule_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "block" -> Ok Block
  | "cyclic" -> Ok Cyclic
  | other ->
      Error (Fmt.str "unknown schedule '%s' (expected block|cyclic)" other)

type t = {
  devices : Device.t array;
  schedule : schedule;
  base_plan : Fault_plan.t option;
      (** the un-partitioned plan, kept for event reporting *)
}

let create ?cm ?(seed = 42) ?(trace = false) ?plan ?(schedule = Block) n =
  if n < 1 then invalid_arg "Device_set.create: need at least one device";
  let plans =
    match plan with
    | None -> Array.init n (fun _ -> None)
    | Some p -> Array.map Option.some (Fault_plan.partition ~seed ~devices:n p)
  in
  let devices =
    Array.init n (fun id ->
        Device.create ~id ?cm
          ~seed:(if id = 0 then seed else seed + (7919 * id))
          ~trace ?plan:plans.(id) ())
  in
  { devices; schedule; base_plan = plan }

(** Wrap an existing standalone device as a one-member set. *)
let of_device ?(schedule = Block) dev =
  { devices = [| dev |]; schedule; base_plan = Some dev.Device.plan }

let size t = Array.length t.devices
let primary t = t.devices.(0)
let device t i = t.devices.(i)

let alive_ids t =
  Array.to_list t.devices
  |> List.filter Device.alive
  |> List.map (fun d -> d.Device.id)

let num_alive t =
  Array.fold_left (fun n d -> if Device.alive d then n + 1 else n) 0 t.devices

let all_lost t = num_alive t = 0

let first_alive t =
  let rec go i =
    if i >= Array.length t.devices then None
    else if Device.alive t.devices.(i) then Some t.devices.(i)
    else go (i + 1)
  in
  go 0

(** Fold every member's injected fault events (time-ordered) and loss state
    back into the base plan, so a partitioned multi-device run reports like
    a single-device one.  Idempotent; a no-op for one-member sets, whose
    base plan {e is} the device's plan. *)
let flush_events t =
  match t.base_plan with
  | None -> ()
  | Some base when Array.length t.devices <= 1 -> ignore base
  | Some base ->
      let evs =
        Array.fold_left
          (fun acc d -> acc @ Fault_plan.events d.Device.plan)
          [] t.devices
      in
      let evs =
        List.stable_sort
          (fun a b ->
            compare a.Fault_plan.e_time b.Fault_plan.e_time)
          evs
      in
      base.Fault_plan.events <- List.rev evs;
      if Array.exists (fun d -> not (Device.alive d)) t.devices then
        base.Fault_plan.lost <- true

(** Per-member accumulated time by ordinal: [(compute, transfer)]
    seconds from each member's own accumulator — compute is the
    synchronous kernel/wait category, transfer the PCIe category.  The
    device-side breakdown the scale bench reports per ordinal. *)
let member_times t =
  Array.map
    (fun d ->
      ( Metrics.time_of d.Device.metrics Metrics.Async_wait,
        Metrics.time_of d.Device.metrics Metrics.Mem_transfer ))
    t.devices

(* --------------------------- iteration split --------------------------- *)

(** Participant index owning iteration ordinal [i] of a [total]-iteration
    loop split across [parts] participants.  Block: contiguous
    ceil(total/parts) chunks; cyclic: round-robin by ordinal. *)
let owner schedule ~parts ~total i =
  if parts <= 1 then 0
  else
    match schedule with
    | Cyclic -> i mod parts
    | Block ->
        let chunk = (total + parts - 1) / parts in
        min (i / chunk) (parts - 1)

(** Number of ordinals of a [total]-iteration loop owned by participant
    [part] (for per-shard cost accounting). *)
let shard_size schedule ~parts ~total part =
  if parts <= 1 then total
  else
    match schedule with
    | Cyclic -> ((total - part - 1) / parts) + if part < total then 1 else 0
    | Block ->
        let chunk = (total + parts - 1) / parts in
        let lo = part * chunk in
        if lo >= total then 0 else min chunk (total - lo)
