(** Seeded, deterministic device-fault plans.

    A plan arms fault rules the device consults at every opportunity
    (allocation, transfer, launch, ECC scrub).  All randomness comes from an
    explicit {!Rng.t} stream derived from the run seed, so faulty runs are
    exactly reproducible from [--seed] plus the spec string.

    Spec grammar (comma-separated):
    [KIND[:TARGET][@PROB][xCOUNT][#DEV]] with [KIND] one of [bitflip],
    [xfer-fail], [xfer-partial], [xfer-corrupt], [launch-fail],
    [launch-timeout], [oom], [device-lost]; [PROB] in (0,1] (default 1);
    [COUNT] a positive int or ['*'] for unlimited (default 1); [DEV] a
    device ordinal in a {!Device_set} (default 0). *)

type kind =
  | Bit_flip
  | Xfer_fail
  | Xfer_partial
  | Xfer_corrupt
  | Launch_fail
  | Launch_timeout
  | Oom
  | Device_lost

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

(** Is recovery a matter of retrying the same operation? ([Device_lost] is
    the only non-transient kind.) *)
val transient : kind -> bool

type rule = {
  r_kind : kind;
  r_target : string option;  (** buffer/kernel name; [None] = any *)
  r_prob : float;
  r_count : int;  (** max injections; negative = unlimited *)
  r_dev : int option;  (** device ordinal in a device set; [None] = dev 0 *)
  mutable r_fired : int;
}

type event = {
  e_kind : kind;
  e_target : string;
  e_op : string;
  e_time : float;  (** simulated host clock at injection *)
}

type t = {
  rng : Rng.t;
  rules : rule list;
  mutable events : event list;  (** reversed; use {!events} *)
  mutable lost : bool;
}

val mk_rule :
  ?target:string -> ?prob:float -> ?count:int -> ?dev:int -> kind -> rule

val create : ?seed:int -> rule list -> t

(** Largest device ordinal named by any rule's [#DEV] selector. *)
val max_dev : t -> int option

(** The device ordinal a rule is armed against (default 0). *)
val rule_dev : rule -> int

(** Split a plan across the [devices] members of a device set; device [d]
    receives the rules armed against it with a seed-derived RNG stream
    (device 0 keeps [seed]'s own stream). *)
val partition : seed:int -> devices:int -> t -> t array

(** The empty plan: no faults ever fire. *)
val none : unit -> t

val is_empty : t -> bool

(** Injected fault events, oldest first. *)
val events : t -> event list

val injected : t -> int

(** Deterministic site pick (bit index, element index, ...). *)
val rand_int : t -> int -> int

(** Should a fault of this kind hit [target] during [op] now?  Logs the
    event (and sets {!field-lost} for [Device_lost]) when it fires. *)
val fire : t -> kind -> target:string -> op:string -> time:float -> bool

val of_spec : ?seed:int -> string -> (t, string) result
val to_spec : t -> string
val pp_event : Format.formatter -> event -> unit
