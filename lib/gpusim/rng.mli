(** Explicit-state deterministic random stream (one per consumer), making
    every simulated run reproducible from a single seed.  Bit-compatible
    with the LCG the device historically used for PCIe jitter. *)

type t = { mutable state : int; seed : int }

val create : int -> t

(** The seed this stream was created from. *)
val seed : t -> int

(** Advance and return the raw 30-bit state. *)
val next : t -> int

(** Deterministic noise in [-1, 1]. *)
val noise : t -> float

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform int in [0, n); returns 0 when [n <= 0]. *)
val int : t -> int -> int

(** A decorrelated child stream derived from the same seed. *)
val split : t -> t
