(** Execution timeline: a record of every device-visible event with its
    simulated start time and duration.

    This is the traceability artifact the paper's Table I contrasts with
    low-level profilers: because events carry the *source-level* label of
    the operation that caused them (the transfer site, the kernel name),
    a user can attribute simulated time back to input directives.  The
    timeline exports Chrome-trace JSON (load in chrome://tracing or
    https://ui.perfetto.dev). *)

type kind =
  | Ev_transfer of { var : string; h2d : bool; bytes : int }
  | Ev_kernel of { name : string; iterations : int }
  | Ev_alloc of string
  | Ev_free of string
  | Ev_wait
  | Ev_check
  | Ev_fault of string  (** injected device fault (fault-kind name) *)

type event = {
  ev_kind : kind;
  ev_label : string;  (** source-level attribution *)
  ev_start : float;  (** simulated seconds *)
  ev_duration : float;
  ev_stream : int option;  (** async queue, if any *)
}

type t = {
  mutable events : event list (* reversed *);
  mutable enabled : bool;
  mutable on_event : (event -> unit) option;
      (** observer called on each recorded event (tracing) *)
}

let create ?(enabled = true) () = { events = []; enabled; on_event = None }

let set_on_event t f = t.on_event <- Some f

let record t ?stream ~kind ~label ~start ~duration () =
  if t.enabled then begin
    let e =
      { ev_kind = kind; ev_label = label; ev_start = start;
        ev_duration = duration; ev_stream = stream }
    in
    t.events <- e :: t.events;
    match t.on_event with None -> () | Some f -> f e
  end

let events t = List.rev t.events

let count t = List.length t.events

let kind_name = function
  | Ev_transfer { h2d = true; _ } -> "transfer-h2d"
  | Ev_transfer { h2d = false; _ } -> "transfer-d2h"
  | Ev_kernel _ -> "kernel"
  | Ev_alloc _ -> "alloc"
  | Ev_free _ -> "free"
  | Ev_wait -> "wait"
  | Ev_check -> "check"
  | Ev_fault k -> "fault-" ^ k

(** Total simulated time per event kind. *)
let summary t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let k = kind_name e.ev_kind in
      Hashtbl.replace tbl k
        (e.ev_duration +. Option.value ~default:0.0 (Hashtbl.find_opt tbl k)))
    (events t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort compare

(* JSON string escaping for labels. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(** Chrome-trace event objects, one string per event. Track 0 is the host
    thread; async streams get their own tracks ([tid = stream + 1]). *)
let chrome_events ?(pid = 1) t =
  List.map
    (fun e ->
      let tid = match e.ev_stream with None -> 0 | Some q -> q + 1 in
      Fmt.str
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": %.3f, \
         \"dur\": %.3f, \"pid\": %d, \"tid\": %d}"
        (escape e.ev_label)
        (kind_name e.ev_kind)
        (e.ev_start *. 1e6) (e.ev_duration *. 1e6) pid tid)
    (events t)

(** One Chrome lane per device-set member: every event of [t] rendered
    onto the single track [tid] (stream substructure collapses into the
    member's lane).  Zero-duration fault events — device loss, injected
    faults — render as thread-scoped instant ("i") marks so they stay
    visible at any zoom. *)
let chrome_device_events ?(pid = 1) ~tid t =
  List.map
    (fun e ->
      match e.ev_kind with
      | Ev_fault _ when e.ev_duration = 0.0 ->
          Fmt.str
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", \"ts\": \
             %.3f, \"s\": \"t\", \"pid\": %d, \"tid\": %d}"
            (escape e.ev_label)
            (kind_name e.ev_kind)
            (e.ev_start *. 1e6) pid tid
      | _ ->
          Fmt.str
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", \"ts\": \
             %.3f, \"dur\": %.3f, \"pid\": %d, \"tid\": %d}"
            (escape e.ev_label)
            (kind_name e.ev_kind)
            (e.ev_start *. 1e6) (e.ev_duration *. 1e6) pid tid)
    (events t)

(** Chrome metadata event naming process [pid] (used when merging the
    timelines of several runs into one trace). *)
let chrome_process_name ~pid name =
  Fmt.str
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"args\": \
     {\"name\": \"%s\"}}"
    pid (escape name)

(** Chrome-trace ("trace event format") JSON. *)
let to_chrome_json t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf line)
    (chrome_events t);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

(** Multi-lane Chrome-trace JSON for a device set: the pre-rendered
    [host] event objects on lane [tid 0], then member [d]'s timeline on
    lane [tid d + 1].  Same document framing as {!to_chrome_json}. *)
let to_chrome_json_devices ?(host = []) timelines =
  let lanes =
    host
    @ List.concat
        (List.mapi
           (fun d t -> chrome_device_events ~tid:(d + 1) t)
           (Array.to_list timelines))
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  List.iteri
    (fun i line ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf "  ";
      Buffer.add_string buf line)
    lanes;
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let pp ppf t =
  List.iter
    (fun e ->
      Fmt.pf ppf "%10.3f us %-12s %-8s %s@." (e.ev_start *. 1e6)
        (kind_name e.ev_kind)
        (match e.ev_stream with
        | None -> "sync"
        | Some q -> Fmt.str "stream%d" q)
        e.ev_label)
    (events t)
