(* OpenACC directive validation: clause legality, nesting, data-clause
   sanity. *)

open Minic

let ok src = Acc.Validate.check_program (Parser.parse_string src)

let bad name src =
  try
    ok src;
    Alcotest.failf "%s: expected validation error" name
  with Acc.Validate.Invalid _ -> ()

let kernel_on body = "int main() { float a[4]; float s; float t;\n" ^ body
                     ^ "\nreturn 0; }"

let test_legal () =
  ok (kernel_on
        "#pragma acc kernels loop gang worker private(t)\nfor (int i = 0; i \
         < 4; i++) { a[i] = 0.0; }");
  ok (kernel_on
        "#pragma acc data copyin(a) if(1)\n{\n#pragma acc parallel loop \
         reduction(+:s)\nfor (int i = 0; i < 4; i++) { s = s + a[i]; }\n}");
  ok (kernel_on "#pragma acc update host(a) async(1)\n#pragma acc wait(1)");
  ok (kernel_on
        "#pragma acc kernels\n{\nfor (int i = 0; i < 4; i++) { a[i] = 1.0; \
         }\n#pragma acc loop gang\nfor (int i = 0; i < 4; i++) { a[i] = \
         2.0; }\n}")

let test_illegal_clauses () =
  bad "gang on data"
    (kernel_on "#pragma acc data gang\n{ }");
  bad "copy on update"
    (kernel_on "#pragma acc update copy(a)");
  bad "private on update"
    (kernel_on "#pragma acc update host(a) private(t)");
  bad "host on kernels"
    (kernel_on
       "#pragma acc kernels loop host(a)\nfor (int i = 0; i < 4; i++) { \
        a[i] = 0.0; }")

let test_structure () =
  bad "nested compute"
    (kernel_on
       "#pragma acc parallel\n{\n#pragma acc kernels loop\nfor (int i = 0; \
        i < 4; i++) { a[i] = 0.0; }\n}");
  bad "orphaned loop"
    (kernel_on "#pragma acc loop gang\nfor (int i = 0; i < 4; i++) { }");
  bad "update inside compute"
    (kernel_on
       "#pragma acc kernels\n{\n#pragma acc update host(a)\n}");
  bad "loop on non-for"
    (kernel_on "#pragma acc kernels loop\na[0] = 1.0;");
  bad "empty update" (kernel_on "#pragma acc update async(1)")

let test_data_sanity () =
  bad "duplicate data var"
    (kernel_on "#pragma acc data copyin(a) copyout(a)\n{ }");
  bad "private and data"
    (kernel_on
       "#pragma acc kernels loop copyin(s) private(s)\nfor (int i = 0; i < \
        4; i++) { a[i] = 0.0; }")

let test_duplicate_clauses () =
  bad "two if clauses"
    (kernel_on "#pragma acc data copyin(a) if(1) if(0)\n{ }");
  bad "two async clauses"
    (kernel_on "#pragma acc update host(a) async(1) async(2)");
  bad "two gang clauses"
    (kernel_on
       "#pragma acc kernels loop gang gang\nfor (int i = 0; i < 4; i++) { \
        a[i] = 0.0; }");
  bad "two collapse clauses"
    (kernel_on
       "#pragma acc kernels loop collapse(2) collapse(2)\nfor (int i = 0; \
        i < 4; i++) { for (int j = 0; j < 4; j++) { a[i] = 0.0; } }");
  bad "seq with independent"
    (kernel_on
       "#pragma acc kernels loop seq independent\nfor (int i = 0; i < 4; \
        i++) { a[i] = 0.0; }");
  bad "collapse(0)"
    (kernel_on
       "#pragma acc kernels loop collapse(0)\nfor (int i = 0; i < 4; i++) \
        { a[i] = 0.0; }");
  (* one of each remains fine *)
  ok (kernel_on
        "#pragma acc kernels loop gang worker collapse(2)\nfor (int i = 0; \
         i < 4; i++) { for (int j = 0; j < 4; j++) { a[i] = 0.0; } }")

let test_nesting_edges () =
  bad "data inside compute"
    (kernel_on
       "#pragma acc kernels\n{\n#pragma acc data copyin(a)\n{ }\n}");
  bad "compute inside compute via loop body"
    (kernel_on
       "#pragma acc kernels loop\nfor (int i = 0; i < 4; i++) {\n#pragma \
        acc kernels loop\nfor (int j = 0; j < 4; j++) { a[j] = 0.0; }\n}");
  bad "wait inside compute"
    (kernel_on "#pragma acc kernels\n{\n#pragma acc wait(1)\n}");
  (* data regions nest among themselves *)
  ok (kernel_on
        "#pragma acc data copyin(a)\n{\n#pragma acc data copyout(a)\n{ \
         }\n}")

let test_subarray_sanity () =
  bad "negative subarray base"
    (kernel_on "#pragma acc data copyin(a[0-1:2])\n{ }");
  bad "zero-length subarray"
    (kernel_on "#pragma acc data copyin(a[0:0])\n{ }");
  bad "negative-length update subarray"
    (kernel_on "#pragma acc update host(a[0:0-2])");
  bad "private and reduction"
    (kernel_on
       "#pragma acc kernels loop private(s) reduction(+:s)\nfor (int i = \
        0; i < 4; i++) { s = s + a[i]; }");
  ok (kernel_on "#pragma acc data copyin(a[1:3])\n{ }")

let tests =
  [ Alcotest.test_case "legal programs" `Quick test_legal;
    Alcotest.test_case "illegal clauses" `Quick test_illegal_clauses;
    Alcotest.test_case "structural rules" `Quick test_structure;
    Alcotest.test_case "data-clause sanity" `Quick test_data_sanity;
    Alcotest.test_case "duplicate clauses" `Quick test_duplicate_clauses;
    Alcotest.test_case "nesting edge cases" `Quick test_nesting_edges;
    Alcotest.test_case "subarray sanity" `Quick test_subarray_sanity ]
