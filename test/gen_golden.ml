(* Regenerates the golden expected-diagnostic files under test/golden/.
   Run from the repository root: [dune exec test/gen_golden.exe].  Review
   the diff before committing — a changed golden file is a changed
   user-visible diagnostic. *)

let out_dir =
  if Array.length Sys.argv > 1 then Sys.argv.(1)
  else Filename.concat "test" "golden"

let () =
  if not (Sys.file_exists out_dir) then
    failwith
      (out_dir
     ^ ": no such directory — run from the repository root, or pass the \
        golden directory as the first argument")

let write path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Keep in sync with test_lint.ml: data/declare labels embed parse-time
   statement ids that vary with parse order. *)
let normalize_sites s =
  Str.global_replace (Str.regexp "\\(data\\|declare\\)[0-9]+") "\\1N" s

let () =
  List.iter
    (fun (b : Suite.Bench_def.t) ->
      List.iter
        (fun (vname, src) ->
          let ds = Lint.run_string ~file:b.name src in
          let text =
            normalize_sites
              (Lint.Diag.to_text
                 (Lint.Diag.filter ~threshold:Lint.Diag.Info ds))
          in
          let path =
            Filename.concat out_dir
              (Fmt.str "%s.%s.lint" (String.lowercase_ascii b.name) vname)
          in
          write path text;
          Fmt.pr "wrote %s (%d diagnostics)@." path (List.length ds))
        [ ("source", b.source); ("opt", b.optimized) ])
    Suite.Registry.all
