(* Suggestion engine and the interactive optimization session (Figure 2). *)

open Minic

let jacobi =
  "int main() { int n = 64; int iters = 5; float a[n]; float b[n];\nfor \
   (int i = 0; i < n; i++) { a[i] = float(i % 7); b[i] = 0.0; }\nfor (int \
   k = 0; k < iters; k++) {\n#pragma acc kernels loop\nfor (int i = 1; i < \
   n - 1; i++) { b[i] = 0.5 * (a[i-1] + a[i+1]); }\n#pragma acc kernels \
   loop\nfor (int i = 1; i < n - 1; i++) { a[i] = b[i]; }\n}\nfloat cs = \
   0.0;\nfor (int i = 0; i < n; i++) { cs = cs + a[i]; }\nreturn 0; }"

let test_suggestions_from_naive_run () =
  let c = Openarc_core.Compiler.compile jacobi in
  let o = Openarc_core.Compiler.run_instrumented c in
  let suggestions = Openarc_core.Suggest.analyze o in
  let has_region_plan =
    List.exists
      (fun s ->
        match s.Openarc_core.Suggest.s_action with
        | Openarc_core.Suggest.Add_data_region _ -> true
        | _ -> false)
      suggestions
  in
  Alcotest.(check bool) "data-region plan suggested" true has_region_plan

let test_session_converges () =
  let prog = Parser.parse_string jacobi in
  let before, _ = Openarc_core.Session.transfer_stats prog in
  let r = Openarc_core.Session.optimize ~outputs:[ "a"; "cs" ] prog in
  Alcotest.(check bool) "converged" true r.Openarc_core.Session.converged;
  Alcotest.(check bool) "few iterations" true
    (r.Openarc_core.Session.iterations <= 4);
  Alcotest.(check int) "no incorrect suggestions" 0
    r.Openarc_core.Session.incorrect_iterations;
  let after, _ =
    Openarc_core.Session.transfer_stats r.Openarc_core.Session.final
  in
  Alcotest.(check bool) "transfers reduced a lot" true (after * 10 <= before)

let test_session_preserves_outputs () =
  let prog = Parser.parse_string jacobi in
  let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  let r = Openarc_core.Session.optimize ~outputs:[ "a"; "cs" ] prog in
  let env = Typecheck.check r.Openarc_core.Session.final in
  let tp = Codegen.Translate.translate env r.Openarc_core.Session.final in
  let o = Accrt.Interp.run ~coherence:false tp in
  Alcotest.(check bool) "outputs preserved" true
    (Openarc_core.Session.outputs_match ~outputs:[ "a"; "cs" ] ~reference o)

let aliased =
  (* The host reads one of two pointer-swapped buffers at the end: the
     blind may-dead analysis mis-suggests dropping its download; the next
     iteration detects and repairs it (one incorrect iteration). *)
  "int main() { int n = 16; float u[n]; float v[n]; float *p; float *q; \
   float *tp;\nfor (int i = 0; i < n; i++) { u[i] = 1.0; v[i] = 2.0; }\np \
   = u; q = v;\nfor (int k = 0; k < 4; k++) {\n#pragma acc kernels \
   loop\nfor (int i = 0; i < n; i++) { q[i] = p[i] + 1.0; }\ntp = p; p = \
   q; q = tp;\n}\nfloat cs = 0.0;\nfor (int i = 0; i < n; i++) { cs = cs \
   + p[i]; }\nreturn 0; }"

let test_wrong_suggestion_detected () =
  let prog = Parser.parse_string aliased in
  let r = Openarc_core.Session.optimize ~outputs:[ "cs" ] prog in
  Alcotest.(check bool) "converged" true r.Openarc_core.Session.converged;
  Alcotest.(check bool) "incorrect iteration recorded" true
    (r.Openarc_core.Session.incorrect_iterations >= 1);
  (* and the final program is still correct *)
  let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  let env = Typecheck.check r.Openarc_core.Session.final in
  let tp = Codegen.Translate.translate env r.Openarc_core.Session.final in
  let o = Accrt.Interp.run ~coherence:false tp in
  Alcotest.(check bool) "correct after repair" true
    (Openarc_core.Session.outputs_match ~outputs:[ "cs" ] ~reference o)

let test_conservative_policy () =
  let prog = Parser.parse_string aliased in
  let r =
    Openarc_core.Session.optimize ~policy:Openarc_core.Session.Conservative
      ~outputs:[ "cs" ] prog
  in
  (* only certain suggestions applied: no wrong turns at all *)
  Alcotest.(check int) "no incorrect iterations" 0
    r.Openarc_core.Session.incorrect_iterations

let test_already_optimal () =
  let src =
    "int main() { int n = 16; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 1.0; }\n#pragma acc data copy(a)\n{\n#pragma acc kernels \
     loop\nfor (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }\n}\nfloat cs \
     = 0.0;\nfor (int i = 0; i < n; i++) { cs = cs + a[i]; }\nreturn 0; }"
  in
  let r =
    Openarc_core.Session.optimize ~outputs:[ "cs" ]
      (Parser.parse_string src)
  in
  Alcotest.(check int) "single clean iteration" 1
    r.Openarc_core.Session.iterations;
  Alcotest.(check bool) "converged" true r.Openarc_core.Session.converged

let test_defer_suggestion_applied () =
  (* per-iteration download read only after the loop: deferred out *)
  let src =
    "int main() { int n = 16; float a[n];\nfor (int i = 0; i < n; i++) { \
     a[i] = 0.0; }\n#pragma acc data copy(a)\n{\nfor (int k = 0; k < 4; \
     k++) {\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { a[i] \
     = a[i] + 1.0; }\n#pragma acc update host(a)\n}\nfloat probe = \
     a[0];\n#pragma acc kernels loop\nfor (int i = 0; i < n; i++) { a[i] = \
     a[i] + probe; }\n}\nfloat cs = 0.0;\nfor (int i = 0; i < n; i++) { cs \
     = cs + a[i]; }\nreturn 0; }"
  in
  let prog = Parser.parse_string src in
  let before, _ = Openarc_core.Session.transfer_stats prog in
  let r = Openarc_core.Session.optimize ~outputs:[ "cs" ] prog in
  let after, _ =
    Openarc_core.Session.transfer_stats r.Openarc_core.Session.final
  in
  Alcotest.(check bool) "converged" true r.Openarc_core.Session.converged;
  Alcotest.(check bool) "in-loop downloads removed" true (after < before)

let test_session_multi_device () =
  (* The interactive loop runs unchanged on a device set: it converges to
     the same directive structure and the optimized program still
     verifies against the sequential reference. *)
  let prog = Parser.parse_string jacobi in
  let solo = Openarc_core.Session.optimize ~outputs:[ "a"; "cs" ] prog in
  let multi =
    Openarc_core.Session.optimize ~devices:2 ~outputs:[ "a"; "cs" ]
      (Parser.parse_string jacobi)
  in
  Alcotest.(check bool) "converged" true multi.Openarc_core.Session.converged;
  Alcotest.(check int) "same iteration count"
    solo.Openarc_core.Session.iterations
    multi.Openarc_core.Session.iterations;
  Alcotest.(check int) "no incorrect suggestions" 0
    multi.Openarc_core.Session.incorrect_iterations;
  let after_solo, _ =
    Openarc_core.Session.transfer_stats solo.Openarc_core.Session.final
  in
  let after_multi, _ =
    Openarc_core.Session.transfer_stats multi.Openarc_core.Session.final
  in
  Alcotest.(check int) "same final directive structure" after_solo after_multi;
  let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  let env = Typecheck.check multi.Openarc_core.Session.final in
  let tp = Codegen.Translate.translate env multi.Openarc_core.Session.final in
  let o = Accrt.Interp.run ~coherence:false ~devices:2 tp in
  Alcotest.(check bool) "optimized outputs verify on two devices" true
    (Openarc_core.Session.outputs_match ~outputs:[ "a"; "cs" ] ~reference o)

(* ------------------------- telemetry ------------------------------- *)

let test_telemetry_records () =
  let prog = Parser.parse_string jacobi in
  let r = Openarc_core.Session.optimize ~outputs:[ "a"; "cs" ] prog in
  let t = r.Openarc_core.Session.telemetry in
  Alcotest.(check int) "one record per iteration"
    r.Openarc_core.Session.iterations (List.length t);
  List.iteri
    (fun i it ->
      Alcotest.(check int)
        (Fmt.str "record %d is 1-based in order" i)
        (i + 1) it.Openarc_core.Session.it_index;
      Alcotest.(check bool)
        (Fmt.str "record %d has a profile" i)
        true
        (it.Openarc_core.Session.it_profile <> None);
      Alcotest.(check bool)
        (Fmt.str "record %d counts all report kinds" i)
        true
        (List.length it.Openarc_core.Session.it_report_counts = 5))
    t;
  let first = List.hd t and last = List.nth t (List.length t - 1) in
  Alcotest.(check bool) "first iteration applied suggestions" true
    (first.Openarc_core.Session.it_suggestions <> []);
  Alcotest.(check string) "last iteration converged" "converged"
    last.Openarc_core.Session.it_note;
  Alcotest.(check bool) "transfers shrank across the session" true
    (last.Openarc_core.Session.it_transfers
    < first.Openarc_core.Session.it_transfers);
  Alcotest.(check bool) "bytes shrank across the session" true
    (last.Openarc_core.Session.it_bytes
    < first.Openarc_core.Session.it_bytes);
  Alcotest.(check bool) "outputs verified on the last iteration" true
    last.Openarc_core.Session.it_outputs_ok;
  (* log_lines flattens the same events the telemetry carries *)
  Alcotest.(check bool) "log_lines nonempty" true
    (Openarc_core.Session.log_lines r <> [])

let test_telemetry_wrong_suggestion () =
  let prog = Parser.parse_string aliased in
  let r = Openarc_core.Session.optimize ~outputs:[ "cs" ] prog in
  Alcotest.(check bool) "a record names the restored var" true
    (List.exists
       (fun it -> it.Openarc_core.Session.it_wrong_restored <> [])
       r.Openarc_core.Session.telemetry)

let test_session_report () =
  let prog = Parser.parse_string jacobi in
  let r = Openarc_core.Session.optimize ~outputs:[ "a"; "cs" ] prog in
  let report = Openarc_core.Session.report ~name:"jacobi" r in
  let contains ~needle s =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Fmt.str "report mentions %S" needle)
        true
        (contains ~needle report))
    [ "interactive session report for jacobi"; "iteration 1"; "converged";
      "transfers:"; "profile delta" ]

let test_session_to_json () =
  let prog = Parser.parse_string jacobi in
  let r = Openarc_core.Session.optimize ~outputs:[ "a"; "cs" ] prog in
  let v = Json_check.parse (Openarc_core.Session.to_json ~name:"jacobi" r) in
  Alcotest.(check (option string)) "schema" (Some "openarc.obs.session")
    (Option.map Json_check.str_exn (Json_check.member "schema" v));
  Alcotest.(check (option (float 0.)))
    "schema version"
    (Some (float_of_int Openarc_core.Session.json_version))
    (Option.map Json_check.num_exn (Json_check.member "version" v));
  let records =
    Json_check.arr_exn (Option.get (Json_check.member "records" v))
  in
  Alcotest.(check int) "records match iterations"
    r.Openarc_core.Session.iterations (List.length records);
  (* v2: every record embeds the iteration's data-movement ledger
     summary, and profiling the naive program (iteration 1) must
     surface nonzero waste. *)
  List.iter
    (fun rv ->
      Alcotest.(check bool) "record embeds a ledger summary" true
        (match Json_check.member "ledger" rv with
        | Some l ->
            Json_check.member "causes" l <> None
            && Json_check.member "wasted_bytes" l <> None
            && Json_check.member "peak_bytes" l <> None
        | None -> false))
    records;
  (match records with
  | first :: _ ->
      let l = Option.get (Json_check.member "ledger" first) in
      Alcotest.(check bool) "naive run shows wasted bytes" true
        (Json_check.num_exn (Option.get (Json_check.member "wasted_bytes" l))
        > 0.0)
  | [] -> Alcotest.fail "no records");
  List.iter
    (fun rv ->
      Alcotest.(check bool) "record embeds a profile doc" true
        (match Json_check.member "profile" rv with
        | Some p ->
            Json_check.member "schema" p
            = Some (Json_check.Str "openarc.obs.profile")
        | None -> false))
    records;
  let deltas =
    Json_check.arr_exn (Option.get (Json_check.member "deltas" v))
  in
  Alcotest.(check int) "one delta per consecutive profiled pair"
    (max 0 (List.length records - 1))
    (List.length deltas);
  List.iter
    (fun dv ->
      Alcotest.(check bool) "delta is a profile-diff doc" true
        (Json_check.member "schema" dv
        = Some (Json_check.Str "openarc.obs.profile-diff")))
    deltas;
  (* deterministic export: same program, same seed, same bytes — modulo
     the statement ids baked into directive labels (the sid counter is
     process-global, so a second in-process session numbers its inserted
     data region differently; across processes the export is
     byte-identical, which the CLI test checks) *)
  let r2 =
    Openarc_core.Session.optimize ~outputs:[ "a"; "cs" ]
      (Parser.parse_string jacobi)
  in
  let normalize s =
    Str.global_replace (Str.regexp "data[0-9]+") "dataN" s
  in
  Alcotest.(check string) "reproducible modulo statement ids"
    (normalize (Openarc_core.Session.to_json ~name:"jacobi" r))
    (normalize (Openarc_core.Session.to_json ~name:"jacobi" r2))

let tests =
  [ Alcotest.test_case "suggestions from naive run" `Quick
      test_suggestions_from_naive_run;
    Alcotest.test_case "session converges" `Quick test_session_converges;
    Alcotest.test_case "session preserves outputs" `Quick
      test_session_preserves_outputs;
    Alcotest.test_case "wrong suggestion detected and repaired" `Quick
      test_wrong_suggestion_detected;
    Alcotest.test_case "conservative policy" `Quick test_conservative_policy;
    Alcotest.test_case "already optimal" `Quick test_already_optimal;
    Alcotest.test_case "defer suggestion applied" `Quick
      test_defer_suggestion_applied;
    Alcotest.test_case "session on a device set" `Quick
      test_session_multi_device;
    Alcotest.test_case "telemetry records" `Quick test_telemetry_records;
    Alcotest.test_case "telemetry wrong suggestion" `Quick
      test_telemetry_wrong_suggestion;
    Alcotest.test_case "session report" `Quick test_session_report;
    Alcotest.test_case "session to_json" `Quick test_session_to_json ]
