(* Integration tests of the bench driver's [wall] tier: the exit-2 usage
   convention for malformed flags, the bench-wall JSON report shape, the
   single-engine mode, and the --min-speedup gate (both directions —
   impossible bounds must fail, a sub-1.0 sanity bound must pass). *)

let exe = "../bench/main.exe"

let available = Sys.file_exists exe

let run_cmd args =
  let out = Filename.temp_file "wall_cli" ".out" in
  let err = Filename.temp_file "wall_cli" ".err" in
  let cmd =
    Fmt.str "%s %s > %s 2> %s" exe args (Filename.quote out)
      (Filename.quote err)
  in
  let code = Sys.command cmd in
  let read p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove p;
    s
  in
  let o = read out and e = read err in
  (code, o, e)

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let read_json path =
  let ic = open_in_bin path in
  let doc = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Json_check.parse doc

let test_bad_flags () =
  if available then begin
    let code, out, err = run_cmd "wall --engine frobnicate" in
    Alcotest.(check int) "bad engine: exit 2" 2 code;
    Alcotest.(check string) "nothing on stdout" "" out;
    Alcotest.(check bool) "engine named on stderr" true
      (contains ~needle:"unknown engine 'frobnicate'" err);
    Alcotest.(check bool) "usage on stderr" true
      (contains ~needle:"usage: main.exe" err);
    let code, _, err = run_cmd "wall --repeats zero" in
    Alcotest.(check int) "bad repeats: exit 2" 2 code;
    Alcotest.(check bool) "repeats named" true
      (contains ~needle:"invalid repeat count 'zero'" err);
    let code, _, err = run_cmd "wall --repeats 0" in
    Alcotest.(check int) "zero repeats: exit 2" 2 code;
    Alcotest.(check bool) "zero repeats named" true
      (contains ~needle:"invalid repeat count '0'" err);
    let code, _, err = run_cmd "wall --min-speedup fast" in
    Alcotest.(check int) "bad speedup bound: exit 2" 2 code;
    Alcotest.(check bool) "bound named" true
      (contains ~needle:"invalid speedup bound 'fast'" err);
    let code, _, err = run_cmd "wall --min-speedup" in
    Alcotest.(check int) "missing value: exit 2" 2 code;
    Alcotest.(check bool) "missing value named" true
      (contains ~needle:"requires a value" err);
    let code, _, err = run_cmd "wall --benches nosuchbenchmark" in
    Alcotest.(check int) "unknown benchmark: exit 2" 2 code;
    Alcotest.(check bool) "benchmark named" true
      (contains ~needle:"unknown benchmark" err)
  end

let test_wall_report () =
  if available then begin
    let json = Filename.temp_file "wall_report" ".json" in
    let code, out, err =
      run_cmd
        (Fmt.str "wall --benches jacobi,ep --repeats 1 --json %s"
           (Filename.quote json))
    in
    Alcotest.(check int) "wall: exit 0" 0 code;
    Alcotest.(check string) "quiet stderr" "" err;
    Alcotest.(check bool) "names both engines" true
      (contains ~needle:"tree" out && contains ~needle:"compiled" out);
    let v = read_json json in
    Alcotest.(check (option string)) "schema"
      (Some "openarc.obs.bench-wall")
      (Option.map Json_check.str_exn (Json_check.member "schema" v));
    let rows =
      Json_check.arr_exn (Option.get (Json_check.member "benchmarks" v))
    in
    Alcotest.(check int) "two benchmarks" 2 (List.length rows);
    List.iter
      (fun rv ->
        List.iter
          (fun field ->
            Alcotest.(check bool)
              (field ^ " present and positive")
              true
              (match Json_check.member field rv with
              | Some (Json_check.Num x) -> x > 0.0
              | _ -> false))
          [ "tree_s"; "compiled_s"; "speedup" ])
      rows;
    Alcotest.(check bool) "median speedup present" true
      (match Json_check.member "median_speedup" v with
      | Some (Json_check.Num x) -> x > 0.0
      | _ -> false)
  end

let test_single_engine () =
  if available then begin
    let json = Filename.temp_file "wall_single" ".json" in
    let code, _, _ =
      run_cmd
        (Fmt.str
           "wall --benches jacobi --repeats 1 --engine compiled --json %s"
           (Filename.quote json))
    in
    Alcotest.(check int) "single engine: exit 0" 0 code;
    let v = read_json json in
    let rows =
      Json_check.arr_exn (Option.get (Json_check.member "benchmarks" v))
    in
    List.iter
      (fun rv ->
        Alcotest.(check bool) "compiled time present" true
          (Json_check.member "compiled_s" rv <> None);
        Alcotest.(check bool) "no tree column" true
          (Json_check.member "tree_s" rv = None);
        Alcotest.(check bool) "no speedup without a baseline" true
          (Json_check.member "speedup" rv = None))
      rows
  end

let test_min_speedup_gate () =
  if available then begin
    let json = Filename.temp_file "wall_gate" ".json" in
    let args extra =
      Fmt.str "wall --benches jacobi --repeats 1 --json %s %s"
        (Filename.quote json) extra
    in
    (* An impossible bound must trip the gate... *)
    let code, out, _ = run_cmd (args "--min-speedup 1000000") in
    Alcotest.(check int) "impossible bound: exit 1" 1 code;
    Alcotest.(check bool) "flagged" true
      (contains ~needle:"WALL REGRESSION" out);
    (* ...and a trivial one must pass (any positive speedup clears 0.01). *)
    let code, out, _ = run_cmd (args "--min-speedup 0.01") in
    Sys.remove json;
    Alcotest.(check int) "trivial bound: exit 0" 0 code;
    Alcotest.(check bool) "reports the gate" true
      (contains ~needle:"median speedup" out)
  end

let tests =
  [ Alcotest.test_case "bad flags" `Quick test_bad_flags;
    Alcotest.test_case "wall report" `Quick test_wall_report;
    Alcotest.test_case "single engine" `Quick test_single_engine;
    Alcotest.test_case "min-speedup gate" `Quick test_min_speedup_gate ]
