(* Fault-plan tests: spec grammar round trips, malformed specs are
   rejected, firing respects target/probability/count budgets, and all
   randomness is reproducible from the explicit seeded RNG. *)

open Gpusim

let ok_plan spec =
  match Fault_plan.of_spec ~seed:7 spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "spec %S rejected: %s" spec e

let check_error spec =
  match Fault_plan.of_spec spec with
  | Ok _ -> Alcotest.failf "spec %S should have been rejected" spec
  | Error _ -> ()

let test_spec_parse () =
  let p = ok_plan "bitflip:a@0.5x3" in
  (match p.Fault_plan.rules with
  | [ r ] ->
      Alcotest.(check bool) "kind" true (r.Fault_plan.r_kind = Fault_plan.Bit_flip);
      Alcotest.(check (option string)) "target" (Some "a") r.Fault_plan.r_target;
      Alcotest.(check (float 0.)) "prob" 0.5 r.Fault_plan.r_prob;
      Alcotest.(check int) "count" 3 r.Fault_plan.r_count
  | rs -> Alcotest.failf "expected 1 rule, got %d" (List.length rs));
  (* defaults: prob 1, count 1 *)
  let p = ok_plan "device-lost" in
  (match p.Fault_plan.rules with
  | [ r ] ->
      Alcotest.(check (float 0.)) "default prob" 1.0 r.Fault_plan.r_prob;
      Alcotest.(check int) "default count" 1 r.Fault_plan.r_count
  | _ -> Alcotest.fail "one rule");
  (* trailing count without target; unlimited budgets *)
  (match (ok_plan "oomx3").Fault_plan.rules with
  | [ r ] -> Alcotest.(check int) "oomx3 count" 3 r.Fault_plan.r_count
  | _ -> Alcotest.fail "one rule");
  (match (ok_plan "xfer-fail:ax*").Fault_plan.rules with
  | [ r ] ->
      Alcotest.(check (option string)) "target" (Some "a") r.Fault_plan.r_target;
      Alcotest.(check int) "unlimited" (-1) r.Fault_plan.r_count
  | _ -> Alcotest.fail "one rule");
  (* the 'x' of xfer-* kinds is not a count separator *)
  (match (ok_plan "xfer-corrupt").Fault_plan.rules with
  | [ r ] ->
      Alcotest.(check bool) "kind survives leading x" true
        (r.Fault_plan.r_kind = Fault_plan.Xfer_corrupt)
  | _ -> Alcotest.fail "one rule");
  let p = ok_plan " bitflip , launch-fail:main_kernel0 ,oom@0.25x* " in
  Alcotest.(check int) "three rules" 3 (List.length p.Fault_plan.rules)

let test_spec_dev_selector () =
  (* no selector: rule is armed against device 0 but r_dev stays None so
     to_spec does not invent a '#0' suffix *)
  (match (ok_plan "device-lost").Fault_plan.rules with
  | [ r ] ->
      Alcotest.(check (option int)) "no selector" None r.Fault_plan.r_dev;
      Alcotest.(check int) "defaults to dev 0" 0 (Fault_plan.rule_dev r)
  | _ -> Alcotest.fail "one rule");
  (match (ok_plan "device-lost#1").Fault_plan.rules with
  | [ r ] ->
      Alcotest.(check (option int)) "#1 parsed" (Some 1) r.Fault_plan.r_dev;
      Alcotest.(check int) "rule_dev" 1 (Fault_plan.rule_dev r)
  | _ -> Alcotest.fail "one rule");
  (* selector composes with every other suffix *)
  (match (ok_plan "bitflip:a@0.5x3#2").Fault_plan.rules with
  | [ r ] ->
      Alcotest.(check (option string)) "target" (Some "a") r.Fault_plan.r_target;
      Alcotest.(check (float 0.)) "prob" 0.5 r.Fault_plan.r_prob;
      Alcotest.(check int) "count" 3 r.Fault_plan.r_count;
      Alcotest.(check (option int)) "dev" (Some 2) r.Fault_plan.r_dev
  | _ -> Alcotest.fail "one rule");
  (* max_dev is the largest ordinal any rule names; None without selectors *)
  Alcotest.(check (option int)) "max_dev none" None
    (Fault_plan.max_dev (ok_plan "bitflip,oom"));
  Alcotest.(check (option int)) "max_dev" (Some 3)
    (Fault_plan.max_dev (ok_plan "bitflip#3,device-lost#1,oom"))

let test_partition () =
  let p = ok_plan "device-lost#1,bitflip:a#1,oomx2,xfer-failx*#2" in
  let parts = Fault_plan.partition ~seed:7 ~devices:3 p in
  Alcotest.(check int) "three member plans" 3 (Array.length parts);
  let kinds t =
    List.map (fun r -> r.Fault_plan.r_kind) t.Fault_plan.rules
  in
  (* each rule lands only on the member its selector names *)
  Alcotest.(check bool) "dev0 gets unselected rules" true
    (kinds parts.(0) = [ Fault_plan.Oom ]);
  Alcotest.(check bool) "dev1 gets its two rules" true
    (kinds parts.(1) = [ Fault_plan.Device_lost; Fault_plan.Bit_flip ]);
  Alcotest.(check bool) "dev2 gets its rule" true
    (kinds parts.(2) = [ Fault_plan.Xfer_fail ]);
  (* budgets travel with the rule *)
  (match parts.(0).Fault_plan.rules with
  | [ r ] -> Alcotest.(check int) "count preserved" 2 r.Fault_plan.r_count
  | _ -> Alcotest.fail "one rule on dev0");
  (* device 0 keeps the seed's own stream: a probabilistic rule fires
     identically whether the plan was partitioned or not *)
  let draw t =
    List.init 40 (fun _ ->
        Fault_plan.fire t Fault_plan.Bit_flip ~target:"a" ~op:"t" ~time:0.0)
  in
  let solo =
    Fault_plan.create ~seed:7
      [ Fault_plan.mk_rule ~prob:0.5 ~count:(-1) Fault_plan.Bit_flip ]
  in
  let split =
    (Fault_plan.partition ~seed:7 ~devices:2
       (Fault_plan.create ~seed:7
          [ Fault_plan.mk_rule ~prob:0.5 ~count:(-1) Fault_plan.Bit_flip ])).(0)
  in
  Alcotest.(check (list bool)) "dev0 stream unchanged by partition"
    (draw solo) (draw split)

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let p = ok_plan spec in
      Alcotest.(check string) (Fmt.str "roundtrip %S" spec) spec
        (Fault_plan.to_spec p))
    [ "bitflip:a@0.5x3"; "device-lost"; "oomx3"; "xfer-fail:ax*";
      "launch-timeout:main_kernel0"; "bitflip,xfer-partial@0.25";
      "device-lost#1"; "bitflip:a@0.5x3#2"; "oomx*#3";
      "device-lost#0,device-lost#1" ]

let test_spec_malformed () =
  List.iter check_error
    [ ""; "bogus"; "bitflip@2"; "bitflip@0"; "bitflip@-1"; "bitflipx0";
      "bitflip@abc"; "frobnicate:a@0.5"; " , "; "bitflip#"; "bitflip#x";
      "bitflip#-1"; "device-lost#1.5" ]

let fire p k ~target =
  Fault_plan.fire p k ~target ~op:"test" ~time:0.0

let test_fire_budget () =
  let p = Fault_plan.create ~seed:3 [ Fault_plan.mk_rule ~count:2 Fault_plan.Oom ] in
  Alcotest.(check bool) "1st" true (fire p Fault_plan.Oom ~target:"a");
  Alcotest.(check bool) "2nd" true (fire p Fault_plan.Oom ~target:"b");
  Alcotest.(check bool) "budget exhausted" false (fire p Fault_plan.Oom ~target:"c");
  Alcotest.(check int) "two events" 2 (Fault_plan.injected p);
  (* unlimited budget never exhausts *)
  let p = Fault_plan.create [ Fault_plan.mk_rule ~count:(-1) Fault_plan.Oom ] in
  for _ = 1 to 10 do
    Alcotest.(check bool) "unlimited" true (fire p Fault_plan.Oom ~target:"a")
  done

let test_fire_target () =
  let p =
    Fault_plan.create [ Fault_plan.mk_rule ~target:"a" ~count:(-1) Fault_plan.Xfer_fail ]
  in
  Alcotest.(check bool) "other target" false (fire p Fault_plan.Xfer_fail ~target:"b");
  Alcotest.(check bool) "other kind" false (fire p Fault_plan.Oom ~target:"a");
  Alcotest.(check bool) "match" true (fire p Fault_plan.Xfer_fail ~target:"a");
  let w =
    Fault_plan.create [ Fault_plan.mk_rule ~target:"*" ~count:(-1) Fault_plan.Xfer_fail ]
  in
  Alcotest.(check bool) "wildcard" true (fire w Fault_plan.Xfer_fail ~target:"zz");
  (* the lost flag latches on device loss *)
  let l = Fault_plan.create [ Fault_plan.mk_rule Fault_plan.Device_lost ] in
  Alcotest.(check bool) "not lost yet" false l.Fault_plan.lost;
  ignore (fire l Fault_plan.Device_lost ~target:"gpu");
  Alcotest.(check bool) "lost latched" true l.Fault_plan.lost

let test_fire_deterministic () =
  let mk () =
    Fault_plan.create ~seed:11
      [ Fault_plan.mk_rule ~prob:0.5 ~count:(-1) Fault_plan.Bit_flip ]
  in
  let draw p = List.init 50 (fun _ -> fire p Fault_plan.Bit_flip ~target:"a") in
  let a = draw (mk ()) and b = draw (mk ()) in
  Alcotest.(check (list bool)) "same seed, same decisions" a b;
  Alcotest.(check bool) "both outcomes occur" true
    (List.mem true a && List.mem false a);
  let c =
    draw
      (Fault_plan.create ~seed:12
         [ Fault_plan.mk_rule ~prob:0.5 ~count:(-1) Fault_plan.Bit_flip ])
  in
  Alcotest.(check bool) "different seed diverges" true (a <> c)

(* ------------------------------- Rng ------------------------------- *)

let test_rng_explicit_state () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let seq r = List.init 20 (fun _ -> Rng.next r) in
  Alcotest.(check (list int)) "same seed reproduces" (seq a) (seq b);
  let c = Rng.create 43 in
  Alcotest.(check bool) "different seed diverges" true (seq (Rng.create 42) <> seq c);
  (* bounds *)
  let r = Rng.create 7 in
  for _ = 1 to 100 do
    let f = Rng.float r in
    Alcotest.(check bool) "float in [0,1)" true (f >= 0.0 && f < 1.0);
    let n = Rng.noise r in
    Alcotest.(check bool) "noise in [-1,1]" true (n >= -1.0 && n <= 1.0);
    let i = Rng.int r 10 in
    Alcotest.(check bool) "int in [0,10)" true (i >= 0 && i < 10)
  done

let test_rng_split_independent () =
  let base = Rng.create 42 in
  let forked = Rng.split base in
  (* The fork is itself deterministic... *)
  let forked' = Rng.split (Rng.create 42) in
  Alcotest.(check int) "split deterministic" (Rng.next forked) (Rng.next forked');
  (* ...and decoupled from the parent stream. *)
  let base' = Rng.create 42 in
  let s1 = List.init 10 (fun _ -> Rng.next base') in
  let b2 = Rng.create 42 in
  ignore (Rng.next (Rng.split b2));
  let s2 = List.init 10 (fun _ -> Rng.next b2) in
  Alcotest.(check (list int)) "parent unaffected by fork draws" s1 s2

let tests =
  [ Alcotest.test_case "spec parse" `Quick test_spec_parse;
    Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "spec malformed" `Quick test_spec_malformed;
    Alcotest.test_case "spec device selector" `Quick test_spec_dev_selector;
    Alcotest.test_case "partition across devices" `Quick test_partition;
    Alcotest.test_case "fire budget" `Quick test_fire_budget;
    Alcotest.test_case "fire target" `Quick test_fire_target;
    Alcotest.test_case "fire deterministic" `Quick test_fire_deterministic;
    Alcotest.test_case "rng explicit state" `Quick test_rng_explicit_state;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent ]
