(* Observability subsystem: span trees and attribution, JSONL export,
   bit-exact profile conservation against the metrics accumulator,
   coherence audit-log replay, flamegraph determinism, recovery and
   device spans, counters. *)

let bench name = Option.get (Suite.Registry.find name)

let tprog_of name =
  let b = bench name in
  let c =
    Openarc_core.Compiler.compile ~file:b.Suite.Bench_def.name
      b.Suite.Bench_def.source
  in
  c.Openarc_core.Compiler.tprog

let categories =
  List.map Gpusim.Metrics.category_name Gpusim.Metrics.all_categories

(* ---------------------------- span tree ---------------------------- *)

let test_span_tree () =
  let tr = Obs.Trace.create () in
  Obs.Trace.with_span tr Obs.Trace.Session "session" (fun () ->
      Obs.Trace.with_span tr Obs.Trace.Phase "run" (fun () ->
          Obs.Trace.leaf tr Obs.Trace.Kernel "k0" ~directive:"k0"
            ~start:1.0 ~duration:0.5 ();
          Alcotest.(check string)
            "innermost directive" "k1"
            (Obs.Trace.with_span tr Obs.Trace.Kernel "k1" ~directive:"k1"
               (fun () -> Obs.Trace.current_directive tr));
          Alcotest.(check string)
            "directive pops with the span" Obs.Trace.host_directive
            (Obs.Trace.current_directive tr)));
  Alcotest.(check int) "all spans closed" 0 (Obs.Trace.open_spans tr);
  (match Obs.Trace.spans tr with
  | [ s0; s1; s2; s3 ] ->
      Alcotest.(check (option int)) "root has no parent" None s0.Obs.Trace.sp_parent;
      Alcotest.(check (option int)) "phase under session" (Some s0.Obs.Trace.sp_id)
        s1.Obs.Trace.sp_parent;
      Alcotest.(check (option int)) "leaf under phase" (Some s1.Obs.Trace.sp_id)
        s2.Obs.Trace.sp_parent;
      Alcotest.(check (option int)) "kernel under phase" (Some s1.Obs.Trace.sp_id)
        s3.Obs.Trace.sp_parent;
      Alcotest.(check string) "leaf kind" "kernel"
        (Obs.Trace.kind_name s2.Obs.Trace.sp_kind);
      Alcotest.(check (option (float 0.))) "leaf pre-timed end" (Some 1.5)
        s2.Obs.Trace.sp_end
  | spans ->
      Alcotest.failf "expected 4 spans, got %d" (List.length spans));
  Alcotest.(check string) "host directive outside spans"
    Obs.Trace.host_directive
    (Obs.Trace.current_directive tr)

let test_counters () =
  let tr = Obs.Trace.create () in
  Obs.Trace.incr tr "a";
  Obs.Trace.count tr "b" 5;
  Obs.Trace.incr tr "a";
  Alcotest.(check (list (pair string int)))
    "first-use order, accumulated"
    [ ("a", 2); ("b", 5) ]
    (Obs.Trace.counters tr)

(* ------------------------------ JSONL ------------------------------ *)

let test_jsonl () =
  let tr = Obs.Trace.create () in
  Obs.Trace.with_span tr Obs.Trace.Session "s \"quoted\"\n" (fun () ->
      Obs.Trace.charge tr ~category:"CPU Time" 0.25);
  Obs.Trace.incr tr "ticks";
  let lines =
    String.split_on_char '\n' (Obs.Trace.to_jsonl tr)
    |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "several lines" true (List.length lines >= 4);
  let parsed = List.map Json_check.parse lines in
  (match parsed with
  | meta :: _ ->
      Alcotest.(check (option string))
        "schema header" (Some "openarc.obs")
        (Option.map Json_check.str_exn (Json_check.member "schema" meta))
  | [] -> Alcotest.fail "empty JSONL");
  let types =
    List.filter_map
      (fun v -> Option.map Json_check.str_exn (Json_check.member "type" v))
      parsed
  in
  List.iter
    (fun ty ->
      Alcotest.(check bool) (Fmt.str "known line type %s" ty) true
        (List.mem ty [ "meta"; "span_begin"; "span_end"; "charge"; "counter" ]))
    types;
  Alcotest.(check bool) "has charge line" true (List.mem "charge" types);
  Alcotest.(check bool) "has counter line" true (List.mem "counter" types)

(* ------------------------- conservation --------------------------- *)

let test_conservation () =
  let tp = tprog_of "JACOBI" in
  let tr = Obs.Trace.create () in
  let o = Accrt.Interp.run ~coherence:false ~seed:42 ~obs:tr tp in
  let total = Gpusim.Metrics.total_time (Accrt.Interp.metrics o) in
  let p = Obs.Profile.of_trace ~categories tr in
  Alcotest.(check bool) "total is positive" true (total > 0.0);
  (* Bit-exact float equality, not an epsilon: the profile replays the
     accumulator's exact addition sequence. *)
  Alcotest.(check bool) "bit-exact conservation" true
    (Obs.Profile.conserves p ~total);
  Alcotest.(check bool) "Float.equal agrees" true
    (Float.equal p.Obs.Profile.p_total total);
  (* Per-category totals likewise match the accumulator's. *)
  List.iter
    (fun c ->
      let name = Gpusim.Metrics.category_name c in
      Alcotest.(check bool) (Fmt.str "category %s conserved" name) true
        (Float.equal
           (List.assoc name p.Obs.Profile.p_totals)
           (Gpusim.Metrics.time_of (Accrt.Interp.metrics o) c)))
    Gpusim.Metrics.all_categories;
  (* Attribution is real: more than just the host row. *)
  Alcotest.(check bool) "several directive rows" true
    (List.length p.Obs.Profile.p_rows > 1)

(* -------------------------- audit replay --------------------------- *)

let tprog_device_of = function
  | Obs.Audit.Cpu -> Codegen.Tprog.Cpu
  | Obs.Audit.Gpu -> Codegen.Tprog.Gpu

let test_audit_replay () =
  let b = bench "JACOBI" in
  let c = Openarc_core.Compiler.compile b.Suite.Bench_def.source in
  let tp = Codegen.Checkgen.instrument c.Openarc_core.Compiler.tprog in
  let audit = Obs.Audit.create () in
  let o = Accrt.Interp.run ~coherence:true ~seed:42 ~audit tp in
  Alcotest.(check bool) "transitions recorded" true
    (Obs.Audit.length audit > 0);
  (* Replaying the log from the all-fresh initial state must land on the
     same final statuses the runtime reports. *)
  List.iter
    (fun ((var, dev), st) ->
      let live =
        Accrt.Coherence.get o.Accrt.Interp.coherence var (tprog_device_of dev)
      in
      Alcotest.(check string)
        (Fmt.str "replayed state of %s/%s" var (Obs.Audit.device_name dev))
        (Codegen.Tprog.status_name live)
        (Obs.Audit.status_name st))
    (Obs.Audit.final_states audit);
  (* Sequence numbers are dense and ordered. *)
  List.iteri
    (fun i e -> Alcotest.(check int) "dense seq" i e.Obs.Audit.a_seq)
    (Obs.Audit.entries audit);
  (* Every JSONL line parses. *)
  String.split_on_char '\n' (Obs.Audit.to_jsonl audit)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun l ->
         match Json_check.member "type" (Json_check.parse l) with
         | Some (Json_check.Str "audit") -> ()
         | _ -> Alcotest.fail "audit line without type=audit")

(* ------------------------- determinism ----------------------------- *)

let run_traced name =
  let tp = tprog_of name in
  let tr = Obs.Trace.create () in
  let o = Accrt.Interp.run ~coherence:false ~seed:42 ~obs:tr tp in
  (tr, o)

let test_flame_deterministic () =
  let tr1, _ = run_traced "JACOBI" in
  let tr2, _ = run_traced "JACOBI" in
  let f1 = Obs.Profile.folded tr1 and f2 = Obs.Profile.folded tr2 in
  Alcotest.(check string) "byte-identical across runs" f1 f2;
  let lines =
    String.split_on_char '\n' f1 |> List.filter (fun l -> l <> "")
  in
  Alcotest.(check bool) "non-empty" true (lines <> []);
  Alcotest.(check bool) "sorted" true (List.sort compare lines = lines);
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "malformed folded line %S" l
      | Some i ->
          let v = String.sub l (i + 1) (String.length l - i - 1) in
          Alcotest.(check bool) (Fmt.str "positive ns in %S" l) true
            (match int_of_string_opt v with Some n -> n > 0 | None -> false))
    lines

let test_profile_json_deterministic () =
  let entry () =
    let tr, o = run_traced "JACOBI" in
    let p = Obs.Profile.of_trace ~categories tr in
    ignore o;
    Obs.Profile.to_json ~name:"JACOBI" ~seed:42 p
  in
  let j1 = entry () and j2 = entry () in
  Alcotest.(check string) "byte-identical JSON" j1 j2;
  let v = Json_check.parse j1 in
  Alcotest.(check (option string))
    "schema" (Some "openarc.obs.profile")
    (Option.map Json_check.str_exn (Json_check.member "schema" v));
  let rows = Json_check.arr_exn (Option.get (Json_check.member "rows" v)) in
  Alcotest.(check bool) "rows present" true (rows <> [])

(* ---------------------- recovery & device spans --------------------- *)

let test_recovery_spans () =
  let tp = tprog_of "JACOBI" in
  let plan =
    match Gpusim.Fault_plan.of_spec ~seed:42 "xfer-fail" with
    | Ok p -> p
    | Error e -> Alcotest.failf "fault spec: %s" e
  in
  let tr = Obs.Trace.create () in
  let o =
    Accrt.Interp.run ~coherence:false ~seed:42 ~plan
      ~resilience:Accrt.Resilience.retry ~obs:tr tp
  in
  ignore o;
  let recoveries =
    List.filter
      (fun s -> s.Obs.Trace.sp_kind = Obs.Trace.Recovery)
      (Obs.Trace.spans tr)
  in
  Alcotest.(check bool) "recovery spans recorded" true (recoveries <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "has cause attr" true
        (List.mem_assoc "cause" s.Obs.Trace.sp_attrs);
      Alcotest.(check bool) "has ok attr" true
        (List.mem_assoc "ok" s.Obs.Trace.sp_attrs))
    recoveries;
  Alcotest.(check bool) "counter mirrors spans" true
    (List.assoc_opt "recoveries" (Obs.Trace.counters tr)
    = Some (List.length recoveries))

let test_device_spans_and_counters () =
  let tp = tprog_of "JACOBI" in
  let tr = Obs.Trace.create () in
  let o = Accrt.Interp.run ~coherence:false ~seed:42 ~trace:true ~obs:tr tp in
  let m = Accrt.Interp.metrics o in
  let device_leaves =
    List.filter
      (fun s -> s.Obs.Trace.sp_kind = Obs.Trace.Device)
      (Obs.Trace.spans tr)
  in
  Alcotest.(check bool) "device leaves imported" true (device_leaves <> []);
  Alcotest.(check (option int))
    "launch counter matches metrics"
    (Some m.Gpusim.Metrics.kernel_launches)
    (List.assoc_opt "launches" (Obs.Trace.counters tr));
  Alcotest.(check bool) "transfer counter recorded" true
    (match List.assoc_opt "transfers" (Obs.Trace.counters tr) with
    | Some n -> n > 0
    | None -> false)

(* ------------------------------ stats ------------------------------ *)

(* The histogram merge is a pointwise bucket-count sum: associative and
   commutative, so per-shard partials can fold in any order. *)
let test_stats_merge_associative () =
  let mk samples =
    let s = Obs.Stats.create () in
    List.iter (Obs.Stats.add s) samples;
    s
  in
  let a = mk [ 1e-6; 2e-6; 3e-6; 0.0; -1.0 ] in
  let b = mk [ 4e-6; 1e-3; 1e-3 ] in
  let c = mk [ 7e-9; 0.5; 1e-6 ] in
  let left = Obs.Stats.merge (Obs.Stats.merge a b) c in
  let right = Obs.Stats.merge a (Obs.Stats.merge b c) in
  Alcotest.(check bool)
    "associative bucket-for-bucket" true
    (Obs.Stats.buckets left = Obs.Stats.buckets right);
  Alcotest.(check int) "count sums" 11 (Obs.Stats.count left);
  Alcotest.(check bool)
    "commutative" true
    (Obs.Stats.buckets (Obs.Stats.merge a b)
    = Obs.Stats.buckets (Obs.Stats.merge b a));
  Alcotest.(check (float 1e-15))
    "mean of merged = global mean"
    ((1e-6 +. 2e-6 +. 3e-6 +. 0.0 -. 1.0 +. 4e-6 +. 1e-3 +. 1e-3 +. 7e-9
     +. 0.5 +. 1e-6)
    /. 11.0)
    (Obs.Stats.mean left)

(* Exact nearest-rank percentiles at the edges: empty (nan), a single
   sample (every percentile of itself), and an N-sample ladder where the
   ranks are computable by hand. *)
let test_stats_percentiles () =
  Alcotest.(check bool)
    "empty population is nan" true
    (Float.is_nan (Obs.Stats.percentile [||] 0.5));
  let one = [| 42e-6 |] in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Fmt.str "p%.0f of singleton" (100. *. q))
        42e-6
        (Obs.Stats.percentile one q))
    [ 0.5; 0.95; 0.99; 1.0 ];
  let n = 100 in
  let samples =
    Array.init n (fun i -> float_of_int (n - i) *. 1e-6)
  in
  Alcotest.(check (float 0.)) "p50 of 1..100" (50. *. 1e-6)
    (Obs.Stats.percentile samples 0.5);
  Alcotest.(check (float 0.)) "p95 of 1..100" (95. *. 1e-6)
    (Obs.Stats.percentile samples 0.95);
  Alcotest.(check (float 0.)) "p99 of 1..100" (99. *. 1e-6)
    (Obs.Stats.percentile samples 0.99);
  Alcotest.(check bool) "input left unsorted" true
    (samples.(0) = 100. *. 1e-6)

(* --------------------------- device lanes --------------------------- *)

(* The multi-device Chrome export: one lane (tid) per device-set member
   plus the host lane at tid 0, and device-loss/failover instant
   events.  Parsed with the tests' own strict JSON parser. *)
let test_trace_lanes () =
  let tp = tprog_of "BFS" in
  let devices = 3 in
  let run plan =
    let tr = Obs.Trace.create () in
    let o =
      Accrt.Interp.run ~coherence:false ~seed:42 ~trace:true ~devices
        ?plan ~resilience:Accrt.Resilience.full ~obs:tr tp
    in
    Json_check.parse
      (Gpusim.Timeline.to_chrome_json_devices
         ~host:(Obs.Chrome.host_lane_events tr)
         (Array.map
            (fun d -> d.Gpusim.Device.timeline)
            o.Accrt.Interp.devset.Gpusim.Device_set.devices))
  in
  let tids v =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           Option.map
             (fun t -> int_of_float (Json_check.num_exn t))
             (Json_check.member "tid" e))
         (Json_check.arr_exn v))
  in
  let v = run None in
  Alcotest.(check (list int))
    "one lane per member plus host"
    (List.init (devices + 1) Fun.id)
    (tids v);
  Alcotest.(check bool)
    "host lane carries directive spans" true
    (List.exists
       (fun e ->
         Json_check.member "tid" e = Some (Json_check.Num 0.)
         && Json_check.member "ph" e = Some (Json_check.Str "X"))
       (Json_check.arr_exn v));
  (* Lose member 1: its loss must surface as instant events — the fault
     on the dying member's lane, the recovery decision on the host's. *)
  let plan =
    Gpusim.Fault_plan.create ~seed:42
      [ Gpusim.Fault_plan.mk_rule ~count:1 ~dev:1
          Gpusim.Fault_plan.Device_lost ]
  in
  let v = run (Some plan) in
  let instants =
    List.filter
      (fun e -> Json_check.member "ph" e = Some (Json_check.Str "i"))
      (Json_check.arr_exn v)
  in
  Alcotest.(check bool) "instant events present" true (instants <> []);
  Alcotest.(check bool)
    "device-loss instant on the lost member's lane" true
    (List.exists
       (fun e -> Json_check.member "tid" e = Some (Json_check.Num 2.))
       instants);
  Alcotest.(check bool)
    "failover instant on the host lane" true
    (List.exists
       (fun e -> Json_check.member "tid" e = Some (Json_check.Num 0.))
       instants)

(* ------------------------- memory lanes ----------------------------- *)

(* The ledger's live allocated-bytes samples surface as Chrome counter
   ("C") events on each member's device lane: name "allocated", tid =
   ordinal + 1, args.bytes the live total after the event. *)
let test_memory_counter_lanes () =
  let tp = tprog_of "BFS" in
  let devices = 3 in
  let tr = Obs.Trace.create () in
  let lg = Obs.Ledger.create ~devices ~schedule:"block" in
  let o =
    Accrt.Interp.run ~coherence:false ~seed:42 ~trace:true ~devices
      ~ledger:lg ~obs:tr tp
  in
  let v =
    Json_check.parse
      (Gpusim.Timeline.to_chrome_json_devices
         ~host:
           (Obs.Chrome.host_lane_events tr
           @ Obs.Ledger.chrome_counter_events lg)
         (Array.map
            (fun d -> d.Gpusim.Device.timeline)
            o.Accrt.Interp.devset.Gpusim.Device_set.devices))
  in
  let counters =
    List.filter
      (fun e -> Json_check.member "ph" e = Some (Json_check.Str "C"))
      (Json_check.arr_exn v)
  in
  Alcotest.(check bool) "counter events present" true (counters <> []);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "counter name" (Some "allocated")
        (Option.map Json_check.str_exn (Json_check.member "name" e));
      let tid =
        int_of_float
          (Json_check.num_exn (Option.get (Json_check.member "tid" e)))
      in
      Alcotest.(check bool) "tid is a device lane" true
        (tid >= 1 && tid <= devices);
      Alcotest.(check bool) "args carry live bytes" true
        (match Json_check.member "args" e with
        | Some args -> (
            match Json_check.member "bytes" args with
            | Some (Json_check.Num b) -> b >= 0.0
            | _ -> false)
        | None -> false))
    counters;
  let lanes =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           Option.map
             (fun t -> int_of_float (Json_check.num_exn t))
             (Json_check.member "tid" e))
         counters)
  in
  Alcotest.(check (list int))
    "every member gets a memory lane"
    (List.init devices (fun i -> i + 1))
    lanes

(* ---------------------------- imbalance ----------------------------- *)

(* Triangular weights under 4 parts: block splitting piles the heavy
   tail onto one shard, cyclic interleaves it — the analyzer must
   re-cost the recorded weights accordingly and recommend the switch. *)
let test_imbalance_recost () =
  let parts = 4 and total = 64 in
  let weights = Array.init total (fun i -> i) in
  let unit = 1e-9 and overhead = 5e-6 in
  let shard_ops p =
    let acc = ref 0 in
    Array.iteri
      (fun i w ->
        if Obs.Imbalance.owner ~schedule:"block" ~parts ~total i = p then
          acc := !acc + w)
      weights;
    !acc
  in
  let l =
    { Obs.Imbalance.l_kernel = "k0";
      l_loc = "k0.c:1";
      l_parts = parts;
      l_total = total;
      l_weights = weights;
      l_unit = unit;
      l_overhead = overhead;
      l_shards =
        Array.init parts (fun p ->
            { Obs.Imbalance.sh_part = p;
              sh_dev = p;
              sh_iters = total / parts;
              sh_ops = shard_ops p;
              sh_time = overhead +. (unit *. float_of_int (shard_ops p));
              sh_failover = false });
      l_barrier = 0.0;
      l_wall = overhead +. (unit *. float_of_int (shard_ops (parts - 1)));
      l_merge = 0.0;
      l_merge_bytes = 0 }
  in
  let wb = Obs.Imbalance.predict_work l ~schedule:"block" in
  let wc = Obs.Imbalance.predict_work l ~schedule:"cyclic" in
  (* Block's heaviest shard owns iterations 48..63: 888 ops.  Cyclic's
     owns {3,7,...,63}: 528 ops. *)
  Alcotest.(check (float 1e-15)) "block heaviest share" (888. *. unit) wb;
  Alcotest.(check (float 1e-15)) "cyclic heaviest share" (528. *. unit) wc;
  Alcotest.(check (float 1e-15))
    "predict = overhead + work"
    (overhead +. wb)
    (Obs.Imbalance.predict l ~schedule:"block");
  let t = Obs.Imbalance.create ~devices:parts ~schedule:"block" in
  Obs.Imbalance.record t l;
  let a = Obs.Imbalance.analyze t in
  Alcotest.(check string) "recommends cyclic" "cyclic"
    a.Obs.Imbalance.a_recommended;
  (match a.Obs.Imbalance.a_kernels with
  | [ r ] ->
      Alcotest.(check string) "verdict switches" "switch"
        r.Obs.Imbalance.r_verdict;
      Alcotest.(check bool) "gain positive" true
        (r.Obs.Imbalance.r_gain > 0.0)
  | rs -> Alcotest.failf "expected 1 kernel report, got %d" (List.length rs));
  (* The same weights run under cyclic must be told to keep it. *)
  let t' = Obs.Imbalance.create ~devices:parts ~schedule:"cyclic" in
  Obs.Imbalance.record t' l;
  Alcotest.(check string) "cyclic keeps cyclic" "cyclic"
    (Obs.Imbalance.analyze t').Obs.Imbalance.a_recommended

let tests =
  [ Alcotest.test_case "span tree" `Quick test_span_tree;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "jsonl export" `Quick test_jsonl;
    Alcotest.test_case "bit-exact conservation" `Quick test_conservation;
    Alcotest.test_case "audit replay" `Quick test_audit_replay;
    Alcotest.test_case "flamegraph determinism" `Quick test_flame_deterministic;
    Alcotest.test_case "profile json determinism" `Quick
      test_profile_json_deterministic;
    Alcotest.test_case "recovery spans" `Quick test_recovery_spans;
    Alcotest.test_case "device spans & counters" `Quick
      test_device_spans_and_counters;
    Alcotest.test_case "stats merge associativity" `Quick
      test_stats_merge_associative;
    Alcotest.test_case "stats percentile edges" `Quick
      test_stats_percentiles;
    Alcotest.test_case "chrome device lanes" `Quick test_trace_lanes;
    Alcotest.test_case "chrome memory counter lanes" `Quick
      test_memory_counter_lanes;
    Alcotest.test_case "imbalance re-costing" `Quick test_imbalance_recost ]
