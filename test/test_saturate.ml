(* The search-based directive optimizer: candidate generation, the
   greedy-with-rollback accept loop, and the shared content-keyed kernel
   store that makes repeated compiled-engine runs of edited program
   variants cheap. *)

let hoistable_src =
  "int main() { float a[32]; float b[32];\n\
   for (int i = 0; i < 32; i++) { a[i] = i; b[i] = 0.0; }\n\
   for (int t = 0; t < 8; t++) {\n\
   #pragma acc kernels loop copyin(a) copy(b)\n\
   for (int i = 0; i < 32; i++) { b[i] = b[i] + a[i]; }\n\
   }\nfloat cs = b[0];\nreturn 0; }"

let translate src =
  let prog = Minic.Parser.parse_string src in
  let env = Minic.Typecheck.check prog in
  (prog, Codegen.Translate.translate env prog)

let counter tr name =
  Option.value ~default:0 (List.assoc_opt name (Obs.Trace.counters tr))

(* ------------------------------------------------------------------ *)
(* Shared kernel store: the compile cache is keyed on kernel content,   *)
(* not kernel id, so a second run — even of a *different translation*   *)
(* whose kernel bodies are unchanged — hits instead of recompiling.     *)
(* ------------------------------------------------------------------ *)

let test_shared_store_hits () =
  let prog, tp = translate hoistable_src in
  let store = Accrt.Compile.create_store () in
  let run tp =
    let tr = Obs.Trace.create () in
    ignore
      (Accrt.Interp.run ~coherence:false ~seed:42
         ~engine:Accrt.Engine.Compiled ~kcache:store ~obs:tr tp);
    (counter tr "engine_compiles", counter tr "engine_compile_hits")
  in
  let compiles1, hits1 = run tp in
  Alcotest.(check int) "first run compiles the kernel once" 1 compiles1;
  (* 8 launches of the t-loop body: 1 compile + 7 in-run hits *)
  Alcotest.(check bool) "first run already reuses within the run" true
    (hits1 >= 7);
  let compiles2, hits2 = run tp in
  Alcotest.(check int) "second run with the shared store compiles nothing"
    0 compiles2;
  Alcotest.(check bool) "second run only hits" true (hits2 >= 8);
  (* an edited program — hoisted data region, kernel body untouched —
     still hits the shared store across a fresh translation *)
  let ksid =
    List.find_map
      (fun (sid, _, d) ->
        if Acc.Query.is_compute d.Minic.Ast.dir then Some sid else None)
      (Acc.Query.directives_of prog)
    |> Option.get
  in
  let loop = Option.get (Acc.Edit.enclosing_loop prog ~sid:ksid) in
  let hoisted =
    Acc.Edit.wrap_stmt prog ~sid:loop.Minic.Ast.sid
      ~directive:
        (Acc.Edit.mk_data_directive
           [ ("a", Minic.Ast.Dk_copyin); ("b", Minic.Ast.Dk_copy) ])
  in
  let env = Minic.Typecheck.check hoisted in
  let tp' = Codegen.Translate.translate env hoisted in
  let compiles3, hits3 = run tp' in
  Alcotest.(check int)
    "edited program with unchanged kernel body compiles nothing" 0
    compiles3;
  Alcotest.(check bool) "edited program hits the shared store" true
    (hits3 >= 8)

(* ------------------------------------------------------------------ *)
(* End-to-end search on a canonical hoistable program                   *)
(* ------------------------------------------------------------------ *)

let test_search_accepts_hoist () =
  let prog = Minic.Parser.parse_string hoistable_src in
  let config =
    { Saturate.default_config with Saturate.check_devices = [ 1; 2 ] }
  in
  let r = Saturate.run ~config ~name:"unit" ~outputs:[ "b" ] prog in
  Alcotest.(check bool) "at least one rewrite accepted" true
    (r.Saturate.r_accepted >= 1);
  Alcotest.(check bool) "the hoist is among the accepted steps" true
    (List.exists
       (fun s -> s.Saturate.st_accepted && s.Saturate.st_kind = Saturate.Hoist)
       r.Saturate.r_steps);
  (* every accepted step's measurement corroborates its prediction *)
  List.iter
    (fun s ->
      if s.Saturate.st_accepted then begin
        Alcotest.(check bool)
          (s.Saturate.st_label ^ ": measured within 0.25-4x of predicted")
          true
          (s.Saturate.st_measured_s >= 0.25 *. s.Saturate.st_predicted_s
          && s.Saturate.st_measured_s <= 4.0 *. s.Saturate.st_predicted_s)
      end)
    r.Saturate.r_steps;
  Alcotest.(check bool) "simulated time went down" true
    (r.Saturate.r_total_after < r.Saturate.r_total_before);
  (* satellite gate: the search's compiled-engine validation runs share
     one content-keyed kernel store, so hits climb across iterations *)
  Alcotest.(check bool) "shared kernel store hit during the search" true
    (r.Saturate.r_compile_hits > 0);
  (* the final program still parses back to itself *)
  let printed = Minic.Pretty.program_to_string r.Saturate.r_program in
  let reparsed = Minic.Parser.parse_string ~file:"<saturated>" printed in
  Alcotest.(check bool) "final program round trips" true
    (Minic.Ast.equal_program r.Saturate.r_program reparsed)

let test_json_report () =
  let prog = Minic.Parser.parse_string hoistable_src in
  let config =
    { Saturate.default_config with
      Saturate.check_devices = [ 1 ];
      max_steps = 2 }
  in
  let run () = Saturate.run ~config ~name:"unit" ~outputs:[ "b" ] prog in
  let j1 = Saturate.to_json (run ()) in
  let j2 = Saturate.to_json (run ()) in
  Alcotest.(check string) "canonical JSON is deterministic" j1 j2;
  let contains ~needle s =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Fmt.str "report mentions %S" needle) true
        (contains ~needle j1))
    [ "\"schema\": \"openarc.obs.saturate\""; "\"version\": 1";
      "\"steps\": ["; "\"predicted_saved_s\""; "\"measured_saved_s\"";
      "\"engine_compile_hits\"" ]

let tests =
  [ Alcotest.test_case "shared kernel store hits across runs" `Quick
      test_shared_store_hits;
    Alcotest.test_case "search accepts the hoist" `Slow
      test_search_accepts_hoist;
    Alcotest.test_case "canonical JSON report" `Quick test_json_report ]
