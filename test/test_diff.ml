(* Differential profiler: exact-zero self-diffs, union semantics over
   disjoint directive sets, canonical-JSON round-trips, and the
   naive-vs-optimized JACOBI attribution the Figure-2 loop relies on. *)

let bench name = Option.get (Suite.Registry.find name)

let categories =
  List.map Gpusim.Metrics.category_name Gpusim.Metrics.all_categories

let profile_of_source ?file src =
  let c = Openarc_core.Compiler.compile ?file src in
  let tr = Obs.Trace.create () in
  let _o =
    Accrt.Interp.run ~coherence:false ~seed:42 ~obs:tr
      c.Openarc_core.Compiler.tprog
  in
  Obs.Profile.of_trace ~categories tr

let profile_bench ?(opt = false) name =
  let b = bench name in
  let src =
    if opt then b.Suite.Bench_def.optimized else b.Suite.Bench_def.source
  in
  profile_of_source ~file:name src

let row directive cats =
  { Obs.Profile.r_directive = directive;
    r_kind = "kernel";
    r_loc = "t.c:1";
    r_cats = cats;
    r_total = List.fold_left (fun a (_, v) -> a +. v) 0.0 cats }

let mk_profile ?(counters = []) rows =
  let cats =
    List.sort_uniq compare
      (List.concat_map (fun r -> List.map fst r.Obs.Profile.r_cats) rows)
  in
  let totals =
    List.map
      (fun c ->
        ( c,
          List.fold_left
            (fun a r ->
              a
              +. Option.value ~default:0.0
                   (List.assoc_opt c r.Obs.Profile.r_cats))
            0.0 rows ))
      cats
  in
  { Obs.Profile.p_categories = cats;
    p_rows = rows;
    p_totals = totals;
    p_total = List.fold_left (fun a r -> a +. r.Obs.Profile.r_total) 0.0 rows;
    p_devices = [];
    p_counters = counters }

(* ------------------------- exact zero ------------------------------ *)

let test_self_diff_zero () =
  (* A real benchmark profile diffed against itself: every delta must be
     exactly 0. (float [=]) — no epsilon anywhere in Obs.Diff. *)
  let p = profile_bench "JACOBI" in
  let d = Obs.Diff.diff ~before:p ~after:p () in
  Alcotest.(check bool) "is_zero" true (Obs.Diff.is_zero d);
  Alcotest.(check bool) "delta literally 0." true (d.Obs.Diff.d_delta = 0.0);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Fmt.str "category %s delta literally 0." c.Obs.Diff.cd_cat)
        true
        (c.Obs.Diff.cd_delta = 0.0))
    d.Obs.Diff.d_totals;
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Fmt.str "row %s unchanged" r.Obs.Diff.rd_directive)
        true
        (r.Obs.Diff.rd_verdict = Obs.Diff.Unchanged
        && r.Obs.Diff.rd_delta = 0.0))
    d.Obs.Diff.d_rows;
  Alcotest.(check (list string)) "no movers" []
    (List.map
       (fun r -> r.Obs.Diff.rd_directive)
       (Obs.Diff.movers d));
  (* and two runs of the same program with the same seed also diff to
     exactly zero: the simulation is deterministic *)
  let p2 = profile_bench "JACOBI" in
  Alcotest.(check bool) "same-seed rerun diffs to zero" true
    (Obs.Diff.is_zero (Obs.Diff.diff ~before:p ~after:p2 ()))

(* ------------------------- edge cases ------------------------------ *)

let empty =
  { Obs.Profile.p_categories = []; p_rows = []; p_totals = [];
    p_total = 0.0; p_devices = []; p_counters = [] }

let test_empty_profiles () =
  let d = Obs.Diff.diff ~before:empty ~after:empty () in
  Alcotest.(check bool) "empty vs empty is zero" true (Obs.Diff.is_zero d);
  Alcotest.(check int) "no rows" 0 (List.length d.Obs.Diff.d_rows);
  let p = mk_profile [ row "k0" [ ("CPU Time", 1.0) ] ] in
  let d = Obs.Diff.diff ~before:empty ~after:p () in
  Alcotest.(check bool) "not zero" false (Obs.Diff.is_zero d);
  (match d.Obs.Diff.d_rows with
  | [ r ] ->
      Alcotest.(check bool) "row appeared" true
        (r.Obs.Diff.rd_verdict = Obs.Diff.Appeared);
      Alcotest.(check (float 0.)) "delta is the whole total" 1.0
        r.Obs.Diff.rd_delta
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  let d = Obs.Diff.diff ~before:p ~after:empty () in
  (match d.Obs.Diff.d_rows with
  | [ r ] ->
      Alcotest.(check bool) "row vanished" true
        (r.Obs.Diff.rd_verdict = Obs.Diff.Vanished)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows))

let test_disjoint_directives () =
  let b =
    mk_profile
      [ row "k0" [ ("CPU Time", 1.0) ]; row "k1" [ ("Mem Transfer", 2.0) ] ]
  in
  let a =
    mk_profile
      [ row "k2" [ ("CPU Time", 0.5) ]; row "k3" [ ("Mem Transfer", 2.5) ] ]
  in
  let d = Obs.Diff.diff ~before:b ~after:a () in
  Alcotest.(check (list string)) "union keeps before order then appeared"
    [ "k0"; "k1"; "k2"; "k3" ]
    (List.map (fun r -> r.Obs.Diff.rd_directive) d.Obs.Diff.d_rows);
  List.iter
    (fun r ->
      let expected =
        if List.mem r.Obs.Diff.rd_directive [ "k0"; "k1" ] then
          Obs.Diff.Vanished
        else Obs.Diff.Appeared
      in
      Alcotest.(check bool)
        (Fmt.str "%s verdict" r.Obs.Diff.rd_directive)
        true
        (r.Obs.Diff.rd_verdict = expected))
    d.Obs.Diff.d_rows;
  Alcotest.(check bool) "totals cancel but is_zero is false" true
    (d.Obs.Diff.d_delta = 0.0 && not (Obs.Diff.is_zero d));
  (* per-category totals still line up: CPU -0.5, Transfer +0.5 *)
  let cat c =
    (List.find (fun x -> x.Obs.Diff.cd_cat = c) d.Obs.Diff.d_totals)
      .Obs.Diff.cd_delta
  in
  Alcotest.(check (float 1e-12)) "cpu shrank" (-0.5) (cat "CPU Time");
  Alcotest.(check (float 1e-12)) "transfer grew" 0.5 (cat "Mem Transfer")

let test_zero_total_categories () =
  (* categories present but charged 0.0 on both sides stay exact zero and
     do not pollute dominant-category attribution *)
  let b =
    mk_profile
      [ row "k0" [ ("CPU Time", 1.0); ("Result-Comp", 0.0) ] ]
  in
  let a =
    mk_profile
      [ row "k0" [ ("CPU Time", 1.5); ("Result-Comp", 0.0) ] ]
  in
  let d = Obs.Diff.diff ~before:b ~after:a () in
  (match d.Obs.Diff.d_rows with
  | [ r ] ->
      Alcotest.(check (option string)) "dominant ignores zero cats"
        (Some "CPU Time") (Obs.Diff.dominant_cat r);
      Alcotest.(check bool) "regressed" true
        (r.Obs.Diff.rd_verdict = Obs.Diff.Regressed)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows));
  let zero_cat =
    List.find
      (fun c -> c.Obs.Diff.cd_cat = "Result-Comp")
      d.Obs.Diff.d_totals
  in
  Alcotest.(check bool) "zero-total category delta literally 0." true
    (zero_cat.Obs.Diff.cd_delta = 0.0)

let test_counters () =
  let b = mk_profile ~counters:[ ("transfers", 10); ("bytes_h2d", 4096) ] []
  and a = mk_profile ~counters:[ ("transfers", 2); ("bytes_h2d", 512) ] [] in
  let d = Obs.Diff.diff ~before:b ~after:a () in
  Alcotest.(check bool) "counter change breaks is_zero" false
    (Obs.Diff.is_zero d);
  Alcotest.(check int) "transfers before" 10
    (let _, bv, _ =
       List.find (fun (n, _, _) -> n = "transfers") d.Obs.Diff.d_counters
     in
     bv);
  Alcotest.(check int) "bytes after" 512
    (let _, _, av =
       List.find (fun (n, _, _) -> n = "bytes_h2d") d.Obs.Diff.d_counters
     in
     av)

(* ------------------------- JSON round-trip ------------------------- *)

let test_profile_json_round_trip () =
  let p = profile_bench "EP" in
  let doc = Obs.Profile.to_json ~name:"EP" ~seed:42 p in
  (match Obs.Diff.profile_of_json doc with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok (p', name, seed) ->
      Alcotest.(check string) "name survives" "EP" name;
      Alcotest.(check int) "seed survives" 42 seed;
      Alcotest.(check int) "row count survives"
        (List.length p.Obs.Profile.p_rows)
        (List.length p'.Obs.Profile.p_rows);
      (* the parsed profile is the %.9f rounding of the original: parsing
         the same document twice must diff to exactly zero *)
      let p'' =
        match Obs.Diff.profile_of_json doc with
        | Ok (x, _, _) -> x
        | Error e -> Alcotest.failf "second parse failed: %s" e
      in
      Alcotest.(check bool) "parse is deterministic (exact-zero diff)" true
        (Obs.Diff.is_zero (Obs.Diff.diff ~before:p' ~after:p'' ())));
  (* non-profile schemas are rejected *)
  (match Obs.Diff.profile_of_json "{\"schema\": \"openarc.obs.session\"}" with
  | Ok _ -> Alcotest.fail "foreign schema accepted"
  | Error _ -> ());
  match Obs.Diff.profile_of_json "{ not json" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let test_diff_json () =
  let b = profile_bench "JACOBI" in
  let a = profile_bench ~opt:true "JACOBI" in
  let d =
    Obs.Diff.diff ~before_name:"naive" ~after_name:"opt" ~before:b ~after:a ()
  in
  let v = Json_check.parse (Obs.Diff.to_json d) in
  Alcotest.(check (option string)) "schema"
    (Some "openarc.obs.profile-diff")
    (Option.map Json_check.str_exn (Json_check.member "schema" v));
  Alcotest.(check (option string)) "before name" (Some "naive")
    (Option.map Json_check.str_exn (Json_check.member "before" v));
  let rows = Json_check.arr_exn (Option.get (Json_check.member "rows" v)) in
  Alcotest.(check int) "rows serialized" (List.length d.Obs.Diff.d_rows)
    (List.length rows);
  let zero =
    match Json_check.member "zero" v with Some (Json_check.Bool z) -> z
    | _ -> Alcotest.fail "zero field missing"
  in
  Alcotest.(check bool) "zero flag matches" (Obs.Diff.is_zero d) zero

(* ----------------- naive vs optimized attribution ------------------ *)

let test_jacobi_attribution () =
  let naive = profile_bench "JACOBI" in
  let opt = profile_bench ~opt:true "JACOBI" in
  let d = Obs.Diff.diff ~before:naive ~after:opt () in
  Alcotest.(check bool) "optimized is faster" true (d.Obs.Diff.d_delta < 0.0);
  (* the win is attributed to the transfer category... *)
  let xfer =
    List.find
      (fun c -> c.Obs.Diff.cd_cat = "Mem Transfer")
      d.Obs.Diff.d_totals
  in
  Alcotest.(check bool) "Mem Transfer carries the win" true
    (xfer.Obs.Diff.cd_delta < 0.0
    && Float.abs xfer.Obs.Diff.cd_delta
       > 0.9 *. Float.abs d.Obs.Diff.d_delta);
  (* ...and the top mover is a data directive whose dominant category is
     the transfer time it stopped paying *)
  (match Obs.Diff.movers d with
  | top :: _ ->
      Alcotest.(check bool) "top mover lost time" true
        (top.Obs.Diff.rd_delta < 0.0);
      Alcotest.(check (option string)) "dominant category"
        (Some "Mem Transfer") (Obs.Diff.dominant_cat top)
  | [] -> Alcotest.fail "no movers in a naive-vs-opt diff");
  (* per-iteration data directives vanished; the enclosing data region's
     directives appeared *)
  let verdict_of v = List.filter (fun r -> r.Obs.Diff.rd_verdict = v) in
  Alcotest.(check bool) "some naive transfer rows vanished" true
    (List.exists
       (fun (r : Obs.Diff.row_delta) ->
         Obs.Diff.dominant_cat r = Some "Mem Transfer")
       (verdict_of Obs.Diff.Vanished d.Obs.Diff.d_rows));
  Alcotest.(check bool) "the data region's rows appeared" true
    (verdict_of Obs.Diff.Appeared d.Obs.Diff.d_rows <> []);
  (* byte counters moved with it *)
  let _, b_h2d, a_h2d =
    List.find (fun (n, _, _) -> n = "bytes_h2d") d.Obs.Diff.d_counters
  in
  Alcotest.(check bool) "h2d bytes dropped" true (a_h2d < b_h2d)

let tests =
  [ Alcotest.test_case "self-diff exactly zero" `Quick test_self_diff_zero;
    Alcotest.test_case "empty profiles" `Quick test_empty_profiles;
    Alcotest.test_case "disjoint directive sets" `Quick
      test_disjoint_directives;
    Alcotest.test_case "zero-total categories" `Quick
      test_zero_total_categories;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "profile json round-trip" `Quick
      test_profile_json_round_trip;
    Alcotest.test_case "diff json export" `Quick test_diff_json;
    Alcotest.test_case "jacobi naive-vs-opt attribution" `Quick
      test_jacobi_attribution ]
