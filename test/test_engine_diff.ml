(* Differential engine equivalence: the closure-compiled engine must be
   observably *bit-identical* to the tree walker — same outputs (to the
   bit), same [ops] accounting, same trace counters (minus the engine's
   own [engine_*] compile counters), same coherence reports, and same
   verification verdicts — across the full twelve-benchmark suite, plus a
   fault-matrix slice exercising the resilient runtime under both
   engines.  This contract is what lets the wall-clock benchmark tier
   (and users) swap engines freely. *)

open Minic

let tree = Accrt.Engine.Tree
let compiled = Accrt.Engine.Compiled

(* Bitwise scalar identity: stricter than (=) on floats (distinguishes
   -0.0 from 0.0, identifies equal NaNs). *)
let scalar_bits = function
  | Accrt.Value.Int n -> (0, Int64.of_int n)
  | Accrt.Value.Flt x -> (1, Int64.bits_of_float x)

let binding_identical b1 b2 =
  match (b1, b2) with
  | Some (Accrt.Value.Scalar c1), Some (Accrt.Value.Scalar c2) ->
      scalar_bits c1.Accrt.Value.v = scalar_bits c2.Accrt.Value.v
  | Some (Accrt.Value.Array { buf = Some a1; _ }),
    Some (Accrt.Value.Array { buf = Some a2; _ }) ->
      Gpusim.Buf.equal a1 a2
  | Some (Accrt.Value.Array { buf = None; _ }),
    Some (Accrt.Value.Array { buf = None; _ })
  | None, None ->
      true
  | _ -> false

let check_outputs what env1 env2 outputs =
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Fmt.str "%s: output '%s' bit-identical" what name)
        true
        (binding_identical (Accrt.Value.lookup env1 name)
           (Accrt.Value.lookup env2 name)))
    outputs

(* The engine's own compile counters are the one intentional observable
   difference; everything else must agree exactly. *)
let counters tr =
  Obs.Trace.counters tr
  |> List.filter (fun (n, _) ->
         not (String.length n >= 7 && String.sub n 0 7 = "engine_"))
  |> List.sort compare

let stats_tuple (s : Accrt.Resilience.stats) =
  ( s.Accrt.Resilience.retries,
    s.Accrt.Resilience.retransfers,
    s.Accrt.Resilience.reexecs,
    s.Accrt.Resilience.fallbacks,
    s.Accrt.Resilience.verified,
    s.Accrt.Resilience.unrecovered,
    s.Accrt.Resilience.device_lost )

let diff_variant (b : Suite.Bench_def.t) variant src =
  let what = Fmt.str "%s/%s" b.name variant in
  let prog = Parser.parse_string ~file:b.name src in
  (* 1. Sequential reference: tree walker vs compiled mirror engine. *)
  let rt = Accrt.Eval.run_reference prog in
  let rc = Accrt.Compile.reference ~engine:compiled prog in
  Alcotest.(check int)
    (what ^ ": reference ops identical")
    rt.Accrt.Eval.ops rc.Accrt.Eval.ops;
  check_outputs (what ^ " reference") rt.Accrt.Eval.env rc.Accrt.Eval.env
    b.outputs;
  (* 2. Translated-program interpreter, uninstrumented. *)
  let tenv = Typecheck.check prog in
  let tp = Codegen.Translate.translate tenv prog in
  let run engine =
    let tr = Obs.Trace.create () in
    let o = Accrt.Interp.run ~coherence:false ~engine ~seed:42 ~obs:tr tp in
    (o, tr)
  in
  let ot, trt = run tree in
  let oc, trc = run compiled in
  Alcotest.(check int)
    (what ^ ": interpreter ops identical")
    ot.Accrt.Interp.ctx.Accrt.Eval.ops oc.Accrt.Interp.ctx.Accrt.Eval.ops;
  check_outputs (what ^ " interpreter") ot.Accrt.Interp.ctx.Accrt.Eval.env
    oc.Accrt.Interp.ctx.Accrt.Eval.env b.outputs;
  Alcotest.(check bool)
    (what ^ ": trace counters identical (sans engine_*)")
    true
    (counters trt = counters trc);
  (* 3. Instrumented run: the coherence verdicts must agree exactly. *)
  let ti = Codegen.Checkgen.instrument tp in
  let oi_t = Accrt.Interp.run ~coherence:true ~engine:tree ~seed:42 ti in
  let oi_c = Accrt.Interp.run ~coherence:true ~engine:compiled ~seed:42 ti in
  check_outputs (what ^ " instrumented")
    oi_t.Accrt.Interp.ctx.Accrt.Eval.env oi_c.Accrt.Interp.ctx.Accrt.Eval.env
    b.outputs;
  Alcotest.(check bool)
    (what ^ ": coherence reports identical")
    true
    (Accrt.Interp.reports oi_t = Accrt.Interp.reports oi_c)

let bench_case (b : Suite.Bench_def.t) =
  Alcotest.test_case b.name `Quick (fun () ->
      diff_variant b "unopt" b.source;
      diff_variant b "opt" b.optimized)

(* A one-member device set is the pre-existing single-device runtime:
   [~devices:1] must be observably bit-identical to not passing the
   option at all — outputs, [ops] accounting, trace counters, the
   simulated clock, the per-directive profile document, and the Chrome
   trace — under both engines and both schedules. *)
let profile_categories =
  List.map Gpusim.Metrics.category_name Gpusim.Metrics.all_categories

let diff_devices1 (b : Suite.Bench_def.t) =
  let prog = Parser.parse_string ~file:b.name b.source in
  let tenv = Typecheck.check prog in
  let tp = Codegen.Translate.translate tenv prog in
  List.iter
    (fun engine ->
      let run ?devices ?schedule () =
        let tr = Obs.Trace.create () in
        let o =
          Accrt.Interp.run ~coherence:false ~engine ~seed:42 ~trace:true
            ?devices ?schedule ~obs:tr tp
        in
        (o, tr)
      in
      let profile_json tr =
        Obs.Profile.to_json ~name:b.name ~seed:42
          (Obs.Profile.of_trace ~categories:profile_categories tr)
      in
      let chrome (o : Accrt.Interp.outcome) =
        Gpusim.Timeline.to_chrome_json
          o.Accrt.Interp.device.Gpusim.Device.timeline
      in
      let o0, tr0 = run () in
      List.iter
        (fun schedule ->
          let o1, tr1 = run ~devices:1 ~schedule () in
          let what =
            Fmt.str "%s/%s/%s --devices 1" b.name (Accrt.Engine.to_string engine)
              (Gpusim.Device_set.schedule_name schedule)
          in
          check_outputs what o0.Accrt.Interp.ctx.Accrt.Eval.env
            o1.Accrt.Interp.ctx.Accrt.Eval.env b.outputs;
          Alcotest.(check int)
            (what ^ ": ops identical")
            o0.Accrt.Interp.ctx.Accrt.Eval.ops
            o1.Accrt.Interp.ctx.Accrt.Eval.ops;
          Alcotest.(check bool)
            (what ^ ": trace counters identical")
            true
            (counters tr0 = counters tr1);
          Alcotest.(check bool)
            (what ^ ": simulated clock identical")
            true
            (Int64.bits_of_float
               (Gpusim.Metrics.total_time (Accrt.Interp.metrics o0))
            = Int64.bits_of_float
                (Gpusim.Metrics.total_time (Accrt.Interp.metrics o1)));
          Alcotest.(check string)
            (what ^ ": profile document byte-identical")
            (profile_json tr0) (profile_json tr1);
          Alcotest.(check string)
            (what ^ ": chrome trace byte-identical")
            (chrome o0) (chrome o1))
        [ Gpusim.Device_set.Block; Gpusim.Device_set.Cyclic ];
      (* The data-movement ledger is a pure observer: attaching one to
         the same --devices 1 run must leave every observable unchanged
         (outputs, ops, counters, clock, profile, Chrome trace) while
         its counted totals conserve the DMA accumulators exactly. *)
      let lg = Obs.Ledger.create ~devices:1 ~schedule:"block" in
      let trl = Obs.Trace.create () in
      let ol =
        Accrt.Interp.run ~coherence:false ~engine ~seed:42 ~trace:true
          ~devices:1 ~schedule:Gpusim.Device_set.Block ~ledger:lg ~obs:trl
          tp
      in
      let what =
        Fmt.str "%s/%s --devices 1 +ledger" b.name
          (Accrt.Engine.to_string engine)
      in
      check_outputs what o0.Accrt.Interp.ctx.Accrt.Eval.env
        ol.Accrt.Interp.ctx.Accrt.Eval.env b.outputs;
      Alcotest.(check int)
        (what ^ ": ops identical")
        o0.Accrt.Interp.ctx.Accrt.Eval.ops
        ol.Accrt.Interp.ctx.Accrt.Eval.ops;
      Alcotest.(check bool)
        (what ^ ": trace counters identical")
        true
        (counters tr0 = counters trl);
      Alcotest.(check bool)
        (what ^ ": simulated clock identical")
        true
        (Int64.bits_of_float
           (Gpusim.Metrics.total_time (Accrt.Interp.metrics o0))
        = Int64.bits_of_float
            (Gpusim.Metrics.total_time (Accrt.Interp.metrics ol)));
      Alcotest.(check string)
        (what ^ ": profile document byte-identical")
        (profile_json tr0) (profile_json trl);
      Alcotest.(check string)
        (what ^ ": chrome trace byte-identical")
        (chrome o0) (chrome ol);
      let mh, md =
        Array.fold_left
          (fun (h, d) dev ->
            let m = dev.Gpusim.Device.metrics in
            (h + m.Gpusim.Metrics.bytes_h2d, d + m.Gpusim.Metrics.bytes_d2h))
          (0, 0) ol.Accrt.Interp.devset.Gpusim.Device_set.devices
      in
      Alcotest.(check (pair int int))
        (what ^ ": ledger conserves the DMA accumulators")
        (mh, md) (Obs.Ledger.totals lg))
    [ tree; compiled ]

let devices1_case (b : Suite.Bench_def.t) =
  Alcotest.test_case (b.name ^ " --devices 1") `Quick (fun () ->
      diff_devices1 b)

(* Verification verdicts — including injected faults — are engine-free. *)
let test_verify_diff () =
  List.iter
    (fun name ->
      let b = Option.get (Suite.Registry.find name) in
      let prog = Parser.parse_string ~file:b.name b.source in
      let strip (r : Openarc_core.Kernel_verify.kernel_report) =
        ( r.Openarc_core.Kernel_verify.kr_kernel.Codegen.Tprog.k_name,
          r.kr_occurrences, r.kr_mismatches, r.kr_assertion_failures )
      in
      let vt =
        Openarc_core.Kernel_verify.verify
          ~opts:Codegen.Options.fault_injection ~engine:tree prog
      in
      let vc =
        Openarc_core.Kernel_verify.verify
          ~opts:Codegen.Options.fault_injection ~engine:compiled prog
      in
      Alcotest.(check bool)
        (name ^ ": verification verdicts identical")
        true
        (List.map strip vt.Openarc_core.Kernel_verify.reports
        = List.map strip vc.Openarc_core.Kernel_verify.reports);
      Alcotest.(check int)
        (name ^ ": sequential ops identical")
        vt.Openarc_core.Kernel_verify.sequential_ops
        vc.Openarc_core.Kernel_verify.sequential_ops)
    [ "JACOBI"; "EP"; "BACKPROP" ]

(* Fault-matrix slice: the resilient runtime (retry, re-execution with
   validation, CPU fallback, host mode) recovers identically under both
   engines. *)
let test_fault_diff () =
  let b = Option.get (Suite.Registry.find "JACOBI") in
  let prog = Parser.parse_string ~file:b.name b.source in
  let tenv = Typecheck.check prog in
  let tp = Codegen.Translate.translate tenv prog in
  List.iter
    (fun kind ->
      let run engine =
        let plan =
          Gpusim.Fault_plan.create ~seed:7
            [ Gpusim.Fault_plan.mk_rule ~prob:0.5 kind ]
        in
        Accrt.Interp.run ~coherence:false ~engine ~seed:42 ~plan
          ~resilience:Accrt.Resilience.full tp
      in
      let ot = run tree in
      let oc = run compiled in
      let what =
        Fmt.str "JACOBI under %s" (Gpusim.Fault_plan.kind_name kind)
      in
      check_outputs what ot.Accrt.Interp.ctx.Accrt.Eval.env
        oc.Accrt.Interp.ctx.Accrt.Eval.env b.outputs;
      Alcotest.(check int) (what ^ ": ops identical")
        ot.Accrt.Interp.ctx.Accrt.Eval.ops
        oc.Accrt.Interp.ctx.Accrt.Eval.ops;
      Alcotest.(check bool)
        (what ^ ": recovery stats identical")
        true
        (stats_tuple ot.Accrt.Interp.resilience
        = stats_tuple oc.Accrt.Interp.resilience))
    [ Gpusim.Fault_plan.Xfer_fail; Gpusim.Fault_plan.Launch_fail;
      Gpusim.Fault_plan.Bit_flip; Gpusim.Fault_plan.Device_lost ]

let tests =
  List.map bench_case Suite.Registry.all
  @ List.map devices1_case Suite.Registry.all
  @ [ Alcotest.test_case "verification verdicts" `Quick test_verify_diff;
      Alcotest.test_case "fault matrix" `Quick test_fault_diff ]
