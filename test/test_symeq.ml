(* Symbolic-equivalence tier (tier 0 of kernel verification).

   Three contracts, checked across the whole bundled suite:
   - coverage: the affine fragment proves at least 8 of the 12 benchmarks
     with every kernel [Proved], and never disproves a faithful build;
   - agreement: on the Table II fault builds the symbolic verdict never
     contradicts the numeric comparator — every [Disproved] kernel is
     numerically detected and every [Proved] kernel is numerically clean;
   - serialization: the canonical JSON document round-trips byte-for-byte
     and malformed documents are rejected. *)

open Suite

let parse (b : Bench_def.t) =
  Minic.Parser.parse_string ~file:b.Bench_def.name b.Bench_def.source

let fault_prog b =
  Openarc_core.Faults.strip_parallelism_clauses (parse b)

let default_result b = Symeq.Engine.check_program (parse b)

let fault_result b =
  Symeq.Engine.check_program ~opts:Codegen.Options.fault_injection
    (fault_prog b)

let is_proved = function Symeq.Engine.Proved _ -> true | _ -> false
let is_disproved = function Symeq.Engine.Disproved _ -> true | _ -> false

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* ---------------------------- coverage ------------------------------ *)

let test_suite_coverage () =
  let fully_proved = ref 0 in
  List.iter
    (fun (b : Bench_def.t) ->
      let r = default_result b in
      Alcotest.(check int)
        (b.name ^ ": one verdict per kernel")
        (List.length r.Symeq.Engine.kernels)
        (r.Symeq.Engine.proved + r.Symeq.Engine.disproved
        + r.Symeq.Engine.unknown);
      (* a faithful build must never be disproved *)
      Alcotest.(check int) (b.name ^ ": no disproved kernels") 0
        r.Symeq.Engine.disproved;
      if r.Symeq.Engine.proved = List.length r.Symeq.Engine.kernels then
        incr fully_proved)
    Registry.all;
  Alcotest.(check bool)
    (Fmt.str "at least 8 of %d benchmarks fully proved (got %d)"
       (List.length Registry.all) !fully_proved)
    true
    (!fully_proved >= 8)

let test_certificates () =
  (* spot-check a proved certificate's printable form *)
  let r = default_result Jacobi.bench in
  List.iter
    (fun (k : Symeq.Engine.kernel_verdict) ->
      match k.kv_verdict with
      | Symeq.Engine.Proved c ->
          Alcotest.(check bool)
            (k.kv_name ^ ": certificate names the written object")
            true
            (c.Symeq.Engine.c_objects <> []);
          List.iter
            (fun (_, form) ->
              Alcotest.(check bool)
                (k.kv_name ^ ": closed form is quantified")
                true
                (contains ~needle:"\xe2\x88\x80" form))
            c.Symeq.Engine.c_objects
      | _ -> Alcotest.fail (k.kv_name ^ ": jacobi kernel not proved"))
    r.Symeq.Engine.kernels

(* --------------------- tier-0 / numeric agreement -------------------- *)

(* Numeric ground truth for a translated program: kernel name -> ok. *)
let numeric_ok ?opts prog =
  let v = Openarc_core.Kernel_verify.verify ?opts prog in
  List.map
    (fun (r : Openarc_core.Kernel_verify.kernel_report) ->
      ( r.kr_kernel.Codegen.Tprog.k_name,
        Openarc_core.Kernel_verify.kernel_ok r ))
    v.Openarc_core.Kernel_verify.reports

let check_agreement name symbolic numeric =
  List.iter
    (fun (k : Symeq.Engine.kernel_verdict) ->
      match List.assoc_opt k.kv_name numeric with
      | None ->
          Alcotest.fail
            (Fmt.str "%s: %s has a symbolic verdict but no numeric report"
               name k.kv_name)
      | Some ok -> (
          match k.kv_verdict with
          | Symeq.Engine.Proved _ ->
              Alcotest.(check bool)
                (Fmt.str "%s/%s: proved kernel is numerically clean" name
                   k.kv_name)
                true ok
          | Symeq.Engine.Disproved _ ->
              Alcotest.(check bool)
                (Fmt.str "%s/%s: disproved kernel is numerically detected"
                   name k.kv_name)
                false ok
          | Symeq.Engine.Unknown _ -> ()))
    symbolic.Symeq.Engine.kernels

let test_agreement_default () =
  List.iter
    (fun (b : Bench_def.t) ->
      check_agreement b.name (default_result b) (numeric_ok (parse b)))
    Registry.all

let test_agreement_fault () =
  let disproved = ref 0 in
  List.iter
    (fun (b : Bench_def.t) ->
      let s = fault_result b in
      disproved := !disproved + s.Symeq.Engine.disproved;
      check_agreement (b.name ^ "-fault") s
        (numeric_ok ~opts:Codegen.Options.fault_injection (fault_prog b)))
    Registry.all;
  (* Table II's four active faults, no more and no fewer, are refuted *)
  Alcotest.(check int) "fault builds: exactly 4 kernels disproved" 4
    !disproved

let test_refutation_witness () =
  (* CG's stripped reduction: the refutation names the accumulator and a
     concrete distinguishing index *)
  let s = fault_result Cg.bench in
  let k =
    List.find
      (fun (k : Symeq.Engine.kernel_verdict) -> is_disproved k.kv_verdict)
      s.Symeq.Engine.kernels
  in
  match k.kv_verdict with
  | Symeq.Engine.Disproved r ->
      Alcotest.(check bool) "refuted object named" true (r.r_object <> "");
      Alcotest.(check bool) "device form given" true (r.r_device <> "");
      Alcotest.(check bool) "sequential form given" true
        (r.r_sequential <> "");
      Alcotest.(check (option int)) "witness index" (Some 0) r.r_index
  | _ -> assert false

(* ----------------- tier-0 integration in Kernel_verify --------------- *)

let test_tier0_skips_numeric () =
  let prog = parse Jacobi.bench in
  let tr = Obs.Trace.create () in
  let v = Openarc_core.Kernel_verify.verify ~obs:tr ~symbolic:true prog in
  (match v.Openarc_core.Kernel_verify.symeq with
  | None -> Alcotest.fail "symbolic tier did not run"
  | Some s ->
      Alcotest.(check int) "all jacobi kernels proved"
        (List.length s.Symeq.Engine.kernels)
        s.Symeq.Engine.proved);
  List.iter
    (fun (r : Openarc_core.Kernel_verify.kernel_report) ->
      Alcotest.(check bool)
        (r.kr_kernel.Codegen.Tprog.k_name ^ ": symbolic verdict attached")
        true
        (match r.kr_symbolic with
        | Some v -> is_proved v
        | None -> false);
      Alcotest.(check bool)
        (r.kr_kernel.Codegen.Tprog.k_name ^ ": numerically clean")
        true
        (Openarc_core.Kernel_verify.kernel_ok r))
    v.Openarc_core.Kernel_verify.reports;
  (* proved kernels never launch on the device: the only simulated-GPU
     cost of the whole verification is zero kernel launches *)
  Alcotest.(check int) "no device launches for proved kernels" 0
    v.Openarc_core.Kernel_verify.metrics.Gpusim.Metrics.kernel_launches;
  (* and the tier is observable *)
  let jsonl = Obs.Trace.to_jsonl tr in
  Alcotest.(check bool) "symeq phase span recorded" true
    (contains ~needle:"\"symeq\"" jsonl);
  Alcotest.(check bool) "symeq.proved counter recorded" true
    (contains ~needle:"symeq.proved" jsonl)

let test_without_symbolic_unchanged () =
  let prog = parse Jacobi.bench in
  let v = Openarc_core.Kernel_verify.verify prog in
  Alcotest.(check bool) "no symeq result by default" true
    (v.Openarc_core.Kernel_verify.symeq = None);
  List.iter
    (fun (r : Openarc_core.Kernel_verify.kernel_report) ->
      Alcotest.(check bool) "no per-kernel verdict by default" true
        (r.kr_symbolic = None))
    v.Openarc_core.Kernel_verify.reports

(* --------------------------- serialization --------------------------- *)

let report b =
  { Symeq.Report.program = b.Bench_def.name; result = default_result b }

let fault_report b =
  { Symeq.Report.program = b.Bench_def.name ^ "-fault";
    result = fault_result b }

let roundtrip name t =
  let j = Symeq.Report.to_json t in
  match Symeq.Report.of_json j with
  | Error e -> Alcotest.fail (Fmt.str "%s: rejected own output: %s" name e)
  | Ok t' ->
      Alcotest.(check string) (name ^ ": byte-identical after round trip") j
        (Symeq.Report.to_json t')

let test_json_roundtrip () =
  (* every benchmark, both builds: proved, disproved, and unknown verdicts
     all survive the round trip *)
  List.iter
    (fun b ->
      roundtrip b.Bench_def.name (report b);
      roundtrip (b.Bench_def.name ^ "-fault") (fault_report b))
    Registry.all

let expect_rejected name doc =
  match Symeq.Report.of_json doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail (name ^ ": malformed document accepted")

let replace ~sub ~by s =
  let n = String.length sub and m = String.length s in
  let rec find i = if i + n > m then None
    else if String.sub s i n = sub then Some i else find (i + 1)
  in
  match find 0 with
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + n) (m - i - n)
  | None -> Alcotest.fail (Fmt.str "fixture does not contain %S" sub)

let test_json_rejects_malformed () =
  let j = Symeq.Report.to_json (report Jacobi.bench) in
  expect_rejected "truncated" (String.sub j 0 (String.length j - 5));
  expect_rejected "empty" "";
  expect_rejected "not json" "plain text";
  expect_rejected "wrong schema tag"
    (replace ~sub:"openarc.obs.symeq" ~by:"openarc.obs.profile" j);
  expect_rejected "missing schema"
    (replace ~sub:"\"schema\": \"openarc.obs.symeq\"" ~by:"\"schema\": 3" j);
  expect_rejected "bad version"
    (replace ~sub:"\"version\": 1" ~by:"\"version\": 99" j);
  expect_rejected "unknown verdict tag"
    (replace ~sub:"\"verdict\": \"proved\"" ~by:"\"verdict\": \"maybe\"" j);
  expect_rejected "coverage mismatch"
    (replace ~sub:"\"proved\": 2" ~by:"\"proved\": 1" j);
  (* a disproved fixture: the witness index must be present *)
  let jf = Symeq.Report.to_json (fault_report Cg.bench) in
  expect_rejected "missing witness index"
    (replace ~sub:"\"index\": 0, " ~by:"" jf)

let tests =
  [ Alcotest.test_case "suite coverage" `Quick test_suite_coverage;
    Alcotest.test_case "certificates" `Quick test_certificates;
    Alcotest.test_case "agreement (default builds)" `Slow
      test_agreement_default;
    Alcotest.test_case "agreement (fault builds)" `Slow test_agreement_fault;
    Alcotest.test_case "refutation witness" `Quick test_refutation_witness;
    Alcotest.test_case "tier-0 skips numeric run" `Quick
      test_tier0_skips_numeric;
    Alcotest.test_case "opt-in only" `Quick test_without_symbolic_unchanged;
    Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick
      test_json_rejects_malformed ]
