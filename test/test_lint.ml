(* The static linter: unit tests for the diagnostics engine, synthetic
   race/transfer cases with machine-applicable fix-its, the Table II
   detection criterion (all 16 latent + 4 active injected faults), the
   zero-noise criterion on the hand-optimized suite, agreement between the
   static transfer diagnostics and the runtime coherence reports, and
   golden expected-diagnostic files for every suite variant. *)

module Diag = Lint.Diag

let codes ds = List.map (fun d -> d.Diag.code) ds

let with_code code ds = List.filter (fun d -> d.Diag.code = code) ds

let race_codes ds =
  List.filter
    (fun c -> String.length c >= 8 && String.sub c 0 8 = "ACC-RACE")
    (codes ds)

let lint ?opts ?fault ?file src = Lint.run_string ?opts ?fault ?file src

(* --------------------------- diag engine ---------------------------- *)

let loc_at line col =
  { Minic.Loc.file = "t.c"; line; col }

let d1 = Diag.mk ~var:"x" ~code:"ACC-RACE-001" ~severity:Diag.Error
    ~loc:(loc_at 3 1) "msg \"quoted\"\nsecond"

let d2 = Diag.mk ~code:"ACC-XFER-004" ~severity:Diag.Warning
    ~loc:(loc_at 2 5) ~site:"update0.host(b)" "redundant"

let d3 = Diag.mk ~code:"ACC-XFER-005" ~severity:Diag.Info
    ~loc:(loc_at 2 5) "maybe"

let test_severity () =
  Alcotest.(check bool) "error reaches warning" true
    (Diag.at_least Diag.Warning Diag.Error);
  Alcotest.(check bool) "info below warning" false
    (Diag.at_least Diag.Warning Diag.Info);
  Alcotest.(check int) "filter at warning" 2
    (List.length (Diag.filter ~threshold:Diag.Warning [ d1; d2; d3 ]));
  Alcotest.(check int) "filter at info keeps all" 3
    (List.length (Diag.filter ~threshold:Diag.Info [ d1; d2; d3 ]));
  Alcotest.(check (option string)) "worst" (Some "error")
    (Option.map Diag.severity_name (Diag.worst [ d2; d3; d1 ]));
  Alcotest.(check (option string)) "worst of none" None
    (Option.map Diag.severity_name (Diag.worst []))

let test_sort () =
  (* by location first, then code *)
  Alcotest.(check (list string)) "sorted order"
    [ "ACC-XFER-004"; "ACC-XFER-005"; "ACC-RACE-001" ]
    (codes (Diag.sort [ d1; d3; d2 ]))

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_json () =
  let j = Diag.to_json [ d1 ] in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json contains " ^ needle) true
        (contains ~needle j))
    [ {|"code": "ACC-RACE-001"|}; {|"severity": "error"|}; {|"line": 3|};
      {|"var": "x"|}; {|\"quoted\"|}; {|\n|} ]

(* --------------------- synthetic race programs ---------------------- *)

let racy_private = {|
int main() {
  int n = 16;
  float a[n];
  float b[n];
  float t;
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc kernels loop gang worker
  for (int i = 0; i < n; i++) {
    t = a[i] * 2.0;
    b[i] = t + 1.0;
  }
  return 0;
}
|}

let racy_reduction = {|
int main() {
  int n = 16;
  float a[n];
  float s = 0.0;
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc kernels loop gang worker
  for (int i = 0; i < n; i++) { s = s + a[i]; }
  return 0;
}
|}

let carried_scalar = {|
int main() {
  int n = 16;
  float a[n];
  float b[n];
  float s = 1.0;
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc kernels loop gang worker
  for (int i = 0; i < n; i++) {
    s = s * 0.5 + a[i];
    b[i] = s;
  }
  return 0;
}
|}

let invariant_write = {|
int main() {
  int n = 16;
  float a[n];
  float c[n];
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc kernels loop gang worker
  for (int i = 0; i < n; i++) { c[0] = a[i]; }
  return 0;
}
|}

let shifted_read = {|
int main() {
  int n = 16;
  float a[n];
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc kernels loop gang worker
  for (int i = 0; i < n - 1; i++) { a[i] = a[i + 1] * 0.5; }
  return 0;
}
|}

(* Apply the first fix-it for [code] and re-lint: the diagnostic must be
   gone and no new >=warning diagnostic may appear. *)
let check_fixit_resolves ~opts ~code src =
  let prog = Minic.Parser.parse_string ~file:"t.c" src in
  let ds = Lint.run_program ~opts prog in
  let d =
    match with_code code ds with
    | d :: _ -> d
    | [] -> Alcotest.failf "expected a %s diagnostic" code
  in
  let fixit =
    match d.Diag.fixit with
    | Some f -> f
    | None -> Alcotest.failf "%s carries no fix-it" code
  in
  let fixed = Diag.apply_fixit prog fixit in
  let ds' = Lint.run_program ~opts fixed in
  Alcotest.(check (list string)) (code ^ " resolved by its fix-it") []
    (codes (with_code code ds'));
  (* the clause edit must not introduce any other race finding (transfer
     diagnostics may shift: a privatized scalar is no longer copied) *)
  Alcotest.(check (list string)) ("no new race findings after fixing " ^ code)
    [] (race_codes (Diag.filter ~threshold:Diag.Warning ds'))

let test_missing_private () =
  let opts = Codegen.Options.fault_injection in
  let ds = lint ~opts racy_private in
  Alcotest.(check int) "one RACE-001" 1 (List.length (with_code "ACC-RACE-001" ds));
  let d = List.hd (with_code "ACC-RACE-001" ds) in
  Alcotest.(check (option string)) "on t" (Some "t") d.Diag.var;
  check_fixit_resolves ~opts ~code:"ACC-RACE-001" racy_private;
  (* with automatic recognition the same scalar is only an info note *)
  Alcotest.(check (list string)) "auto-privatized: info note only"
    [ "ACC-RACE-010" ] (race_codes (lint racy_private))

let test_missing_reduction () =
  let opts = Codegen.Options.fault_injection in
  let ds = lint ~opts racy_reduction in
  Alcotest.(check int) "one RACE-002" 1
    (List.length (with_code "ACC-RACE-002" ds));
  check_fixit_resolves ~opts ~code:"ACC-RACE-002" racy_reduction;
  Alcotest.(check (list string)) "auto-recognized: info note only"
    [ "ACC-RACE-011" ] (race_codes (lint racy_reduction))

let test_carried_scalar () =
  (* neither privatizable nor an accumulator: an error even with every
     automatic recognition enabled *)
  let ds = lint carried_scalar in
  Alcotest.(check int) "one RACE-005" 1
    (List.length (with_code "ACC-RACE-005" ds));
  Alcotest.(check (option string)) "on s" (Some "s")
    (List.hd (with_code "ACC-RACE-005" ds)).Diag.var

let test_array_conflicts () =
  let ds = lint invariant_write in
  Alcotest.(check int) "invariant write: one RACE-003" 1
    (List.length (with_code "ACC-RACE-003" ds));
  let ds = lint shifted_read in
  Alcotest.(check int) "shifted read: one RACE-004" 1
    (List.length (with_code "ACC-RACE-004" ds));
  Alcotest.(check (option string)) "on a" (Some "a")
    (List.hd (with_code "ACC-RACE-004" ds)).Diag.var

(* ------------------- synthetic transfer programs -------------------- *)

let missing_transfer = {|
int main() {
  int n = 8;
  float a[n];
  float s = 0.0;
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc data create(a)
  {
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
  }
  for (int i = 0; i < n; i++) { s = s + a[i]; }
  return 0;
}
|}

let redundant_update = {|
int main() {
  int n = 8;
  float a[n];
  float s = 0.0;
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc data copy(a)
  {
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
    #pragma acc update host(a)
    #pragma acc update host(a)
  }
  for (int i = 0; i < n; i++) { s = s + a[i]; }
  return 0;
}
|}

let incorrect_update = {|
int main() {
  int n = 8;
  float a[n];
  float b[n];
  for (int i = 0; i < n; i++) { a[i] = float(i); }
  #pragma acc data copyin(a) copyout(b)
  {
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
    #pragma acc update device(a)
    #pragma acc kernels loop gang worker
    for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
  }
  float s = 0.0;
  for (int i = 0; i < n; i++) { s = s + a[i]; }
  return 0;
}
|}

let test_missing_transfer () =
  let ds = lint missing_transfer in
  Alcotest.(check bool) "XFER-001 on a" true
    (List.exists (fun d -> d.Diag.var = Some "a")
       (with_code "ACC-XFER-001" ds))

let test_redundant_update () =
  let ds = with_code "ACC-XFER-004" (lint redundant_update) in
  let on_update =
    List.filter
      (fun d ->
        match d.Diag.site with
        | Some s -> Openarc_core.Suggest.site_kind s = `Update
        | None -> false)
      ds
  in
  Alcotest.(check bool) "XFER-004 on the second update host" true
    (List.exists
       (fun d ->
         match d.Diag.fixit with
         | Some (Diag.Fix_remove_update_var { host = true; var = "a"; _ }) ->
             true
         | _ -> false)
       on_update)

let test_incorrect_update () =
  let ds = lint incorrect_update in
  Alcotest.(check bool) "XFER-003 on a" true
    (List.exists (fun d -> d.Diag.var = Some "a")
       (with_code "ACC-XFER-003" ds))

(* ------------------------- Table II faults -------------------------- *)

(* Under the fault-injection experiment (private/reduction clauses
   stripped, recognition disabled) the detector must flag every injected
   fault: distinct kernels with a RACE-001 are exactly Table II's
   private-data kernels (latent under register promotion), kernels with a
   RACE-002 exactly its reduction kernels (active races). *)
let test_table2 () =
  let latent_total = ref 0 and active_total = ref 0 in
  List.iter
    (fun (b : Suite.Bench_def.t) ->
      let ds = lint ~fault:true ~file:b.name b.source in
      let kernels_with code =
        List.length
          (List.sort_uniq compare
             (List.map (fun d -> d.Diag.loc) (with_code code ds)))
      in
      let latent = kernels_with "ACC-RACE-001" in
      let active = kernels_with "ACC-RACE-002" in
      Alcotest.(check int) (b.name ^ ": latent faults flagged")
        b.expected_private latent;
      Alcotest.(check int) (b.name ^ ": active faults flagged")
        b.expected_reduction active;
      latent_total := !latent_total + latent;
      active_total := !active_total + active)
    Suite.Registry.all;
  Alcotest.(check int) "16 latent faults across the suite" 16 !latent_total;
  Alcotest.(check int) "4 active faults across the suite" 4 !active_total

(* ------------------------ suite cleanliness ------------------------- *)

(* The hand-optimized variants are the paper's end state: the linter must
   be silent on them at the default (warning) threshold.  The unoptimized
   sources are correct programs too — merely slow — so they carry no race
   findings, only redundant-transfer warnings (the tool's optimization
   opportunities, section III-B). *)
let test_suite_clean () =
  List.iter
    (fun (b : Suite.Bench_def.t) ->
      let at_warning src =
        codes (Diag.filter ~threshold:Diag.Warning (lint ~file:b.name src))
      in
      Alcotest.(check (list string))
        (b.name ^ " optimized: no findings at default severity") []
        (at_warning b.optimized);
      Alcotest.(check (list string))
        (b.name ^ " source: only transfer warnings") []
        (List.filter
           (fun c -> not (contains ~needle:"XFER" c))
           (at_warning b.source)))
    Suite.Registry.all

(* ------------------ static vs runtime cross-check ------------------- *)

let kind_of_code = function
  | "ACC-XFER-001" -> Some Accrt.Coherence.Missing
  | "ACC-XFER-003" -> Some Accrt.Coherence.Incorrect
  | "ACC-XFER-004" -> Some Accrt.Coherence.Redundant
  | _ -> None

(* Every definite static claim (missing / incorrect / redundant transfer)
   must be confirmed by the runtime coherence checker: same kind, same
   variable, same instrumentation site (paper section III-B). *)
let test_runtime_agreement () =
  List.iter
    (fun (b : Suite.Bench_def.t) ->
      List.iter
        (fun (vname, src) ->
          let c = Openarc_core.Compiler.compile ~file:b.name src in
          let ds = Lint.Xfer.analyze c.Openarc_core.Compiler.tprog in
          let o = Openarc_core.Compiler.run_instrumented c in
          let reports = Accrt.Interp.reports o in
          let confirmed d =
            match kind_of_code d.Diag.code with
            | None -> true
            | Some k ->
                List.exists
                  (fun r ->
                    r.Accrt.Coherence.r_kind = k
                    && Some r.Accrt.Coherence.r_var = d.Diag.var
                    && (match (d.Diag.site, r.Accrt.Coherence.r_site) with
                       | None, _ -> true
                       | Some s, Some rs ->
                           rs.Codegen.Tprog.site_label = s
                       | Some _, None -> false))
                  reports
          in
          let unmatched = List.filter (fun d -> not (confirmed d)) ds in
          Alcotest.(check (list string))
            (Fmt.str "%s %s: every definite static claim has a runtime report"
               b.name vname)
            [] (codes unmatched))
        [ ("source", b.source); ("opt", b.optimized) ])
    Suite.Registry.all

(* --------------------------- golden files --------------------------- *)

(* Expected diagnostics (all severities) for every suite variant, kept
   under test/golden/.  Regenerate with [dune exec test/gen_golden.exe]
   from the repository root after an intentional behavior change.

   Data/declare site labels embed parse-time statement ids, which depend
   on how many programs the process parsed before; normalize them so the
   text is reproducible (keep in sync with gen_golden.ml). *)
let normalize_sites s =
  Str.global_replace (Str.regexp "\\(data\\|declare\\)[0-9]+") "\\1N" s

let golden_text ~file src =
  normalize_sites
    (Diag.to_text (Diag.filter ~threshold:Diag.Info (lint ~file src)))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let golden_case (b : Suite.Bench_def.t) =
  Alcotest.test_case b.name `Quick (fun () ->
      List.iter
        (fun (vname, src) ->
          let path =
            Fmt.str "golden/%s.%s.lint" (String.lowercase_ascii b.name) vname
          in
          (* cwd is _build/default/test under 'dune test', the project root
             under 'dune exec' *)
          let expected =
            try read_file path
            with Sys_error _ -> (
              try read_file (Filename.concat "test" path)
              with Sys_error _ ->
                Alcotest.failf
                  "missing golden file %s — run 'dune exec \
                   test/gen_golden.exe'"
                  path)
          in
          Alcotest.(check string)
            (Fmt.str "%s %s matches its golden diagnostics" b.name vname)
            expected
            (golden_text ~file:b.name src))
        [ ("source", b.source); ("opt", b.optimized) ])

let tests =
  [ Alcotest.test_case "diag severity+filter" `Quick test_severity;
    Alcotest.test_case "diag sort" `Quick test_sort;
    Alcotest.test_case "diag json" `Quick test_json;
    Alcotest.test_case "missing private" `Quick test_missing_private;
    Alcotest.test_case "missing reduction" `Quick test_missing_reduction;
    Alcotest.test_case "carried scalar" `Quick test_carried_scalar;
    Alcotest.test_case "array conflicts" `Quick test_array_conflicts;
    Alcotest.test_case "missing transfer" `Quick test_missing_transfer;
    Alcotest.test_case "redundant update" `Quick test_redundant_update;
    Alcotest.test_case "incorrect update" `Quick test_incorrect_update;
    Alcotest.test_case "Table II faults all flagged" `Quick test_table2;
    Alcotest.test_case "suite clean at default severity" `Quick
      test_suite_clean;
    Alcotest.test_case "static claims confirmed at runtime" `Quick
      test_runtime_agreement ]
  @ List.map golden_case Suite.Registry.all
