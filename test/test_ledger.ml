(* Data-movement ledger: exact byte conservation against the per-device
   metrics accumulators across the full benchmark suite x both engines x
   device counts {1,2,4}, byte-stable JSON export, the counterfactual
   analyzer's verdicts on synthetic ledgers (hoist / present /
   materiality), live watermarks and lifetimes, and multi-device cause
   attribution. *)

let bench name = Option.get (Suite.Registry.find name)

let run_ledgered ?(instrument = false) ~engine ~devices ~schedule
    (b : Suite.Bench_def.t) =
  let prog = Minic.Parser.parse_string ~file:b.name b.source in
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let tp = if instrument then Codegen.Checkgen.instrument tp else tp in
  let lg =
    Obs.Ledger.create ~devices
      ~schedule:(Gpusim.Device_set.schedule_name schedule)
  in
  let o =
    Accrt.Interp.run ~coherence:instrument ~engine ~seed:42 ~devices
      ~schedule ~ledger:lg tp
  in
  (lg, o)

let metrics_bytes (o : Accrt.Interp.outcome) =
  Array.fold_left
    (fun (h, d) dev ->
      let m = dev.Gpusim.Device.metrics in
      (h + m.Gpusim.Metrics.bytes_h2d, d + m.Gpusim.Metrics.bytes_d2h))
    (0, 0) o.Accrt.Interp.devset.Gpusim.Device_set.devices

(* ------------------------- conservation ---------------------------- *)

(* Counted ledger bytes must equal the DMA accumulators summed over
   every device-set member — exact integer equality, no tolerance. *)
let conservation_case (b : Suite.Bench_def.t) =
  Alcotest.test_case b.name `Quick (fun () ->
      List.iter
        (fun engine ->
          List.iter
            (fun devices ->
              let lg, o =
                run_ledgered ~engine ~devices
                  ~schedule:Gpusim.Device_set.Block b
              in
              let mh, md = metrics_bytes o in
              let lh, ld = Obs.Ledger.totals lg in
              let what =
                Fmt.str "%s/%s/%d device(s)" b.name
                  (Accrt.Engine.to_string engine)
                  devices
              in
              Alcotest.(check int) (what ^ ": h2d conserved") mh lh;
              Alcotest.(check int) (what ^ ": d2h conserved") md ld;
              Alcotest.(check bool) (what ^ ": bytes moved") true (lh > 0))
            [ 1; 2; 4 ])
        [ Accrt.Engine.Tree; Accrt.Engine.Compiled ])

(* --------------------- analyzer: synthetic ------------------------- *)

let lat = 10e-6
let bw = 8e9
let cost b = lat +. (float_of_int b /. bw)

(* A loop-invariant upload re-executed with no intervening host write:
   every repeat is hoistable and the site earns a "hoist" verdict whose
   saving is exactly the modeled DMA time of the dropped transfers. *)
let test_analyzer_hoist () =
  let lg = Obs.Ledger.create ~devices:1 ~schedule:"block" in
  for i = 1 to 4 do
    Obs.Ledger.xfer lg ~array:"a" ~dir:Obs.Ledger.H2d
      ~cause:Obs.Ledger.Copyin ~bytes:1024 ~dev:0 ~site:"copyin(a)"
      ~loc:"t.c:1" ~exec:i ~span:(-1)
      ~time:(float_of_int i) ~duration:1e-6 ~counted:true ~redundant:false
      ~hoist:(i > 1)
  done;
  let a = Obs.Ledger.analyze lg ~pcie_latency:lat ~pcie_bandwidth:bw in
  Alcotest.(check int) "h2d total" 4096 a.Obs.Ledger.a_h2d_bytes;
  Alcotest.(check int) "d2h total" 0 a.Obs.Ledger.a_d2h_bytes;
  match a.Obs.Ledger.a_sites with
  | [ s ] ->
      Alcotest.(check string) "rewrite" "hoist" s.Obs.Ledger.s_rewrite;
      Alcotest.(check int) "hoistable repeats" 3 s.Obs.Ledger.s_hoistable;
      Alcotest.(check int) "wasted bytes" 3072 s.Obs.Ledger.s_wasted_bytes;
      Alcotest.(check (float 1e-15))
        "saving = 3 modeled transfers"
        (3.0 *. cost 1024)
        s.Obs.Ledger.s_saved_s;
      Alcotest.(check string) "verdict" "apply" s.Obs.Ledger.s_verdict;
      Alcotest.(check (float 1e-15))
        "analysis saving totals apply sites" s.Obs.Ledger.s_saved_s
        a.Obs.Ledger.a_saved_s
  | ss -> Alcotest.failf "expected 1 site, got %d" (List.length ss)

(* A hoist flag on a site's only transfer is vacuous: there is no
   previous transfer to hoist to, so nothing may be counted. *)
let test_analyzer_hoist_needs_repeat () =
  let lg = Obs.Ledger.create ~devices:1 ~schedule:"block" in
  Obs.Ledger.xfer lg ~array:"a" ~dir:Obs.Ledger.H2d
    ~cause:Obs.Ledger.Copyin ~bytes:1024 ~dev:0 ~site:"copyin(a)"
    ~loc:"t.c:1" ~exec:1 ~span:(-1) ~time:0.0 ~duration:1e-6 ~counted:true
    ~redundant:false ~hoist:true;
  let a = Obs.Ledger.analyze lg ~pcie_latency:lat ~pcie_bandwidth:bw in
  match a.Obs.Ledger.a_sites with
  | [ s ] ->
      Alcotest.(check int) "no hoistable repeat" 0 s.Obs.Ledger.s_hoistable;
      Alcotest.(check string) "rewrite" "none" s.Obs.Ledger.s_rewrite;
      Alcotest.(check int) "nothing wasted" 0 a.Obs.Ledger.a_wasted_bytes
  | ss -> Alcotest.failf "expected 1 site, got %d" (List.length ss)

(* A download whose destination copy was already fresh on every
   execution: copy -> present. *)
let test_analyzer_present () =
  let lg = Obs.Ledger.create ~devices:1 ~schedule:"block" in
  List.iter
    (fun i ->
      Obs.Ledger.xfer lg ~array:"b" ~dir:Obs.Ledger.D2h
        ~cause:Obs.Ledger.Copyout ~bytes:2048 ~dev:0 ~site:"copyout(b)"
        ~loc:"t.c:9" ~exec:i ~span:(-1)
        ~time:(float_of_int i) ~duration:1e-6 ~counted:true ~redundant:true
        ~hoist:false)
    [ 1; 2 ];
  let a = Obs.Ledger.analyze lg ~pcie_latency:lat ~pcie_bandwidth:bw in
  match a.Obs.Ledger.a_sites with
  | [ s ] ->
      Alcotest.(check string) "rewrite" "present" s.Obs.Ledger.s_rewrite;
      Alcotest.(check int) "all redundant" 2 s.Obs.Ledger.s_redundant;
      Alcotest.(check int) "wasted bytes" 4096 s.Obs.Ledger.s_wasted_bytes;
      Alcotest.(check string) "verdict" "apply" s.Obs.Ledger.s_verdict
  | ss -> Alcotest.failf "expected 1 site, got %d" (List.length ss)

(* An immaterial rewrite (saving under the materiality share of the
   modeled transfer time) keeps the clauses as written. *)
let test_analyzer_materiality () =
  let lg = Obs.Ledger.create ~devices:1 ~schedule:"block" in
  Obs.Ledger.xfer lg ~array:"big" ~dir:Obs.Ledger.H2d
    ~cause:Obs.Ledger.Copyin ~bytes:100_000_000 ~dev:0 ~site:"copyin(big)"
    ~loc:"t.c:1" ~exec:1 ~span:(-1) ~time:0.0 ~duration:1e-2 ~counted:true
    ~redundant:false ~hoist:false;
  List.iter
    (fun (i, red) ->
      Obs.Ledger.xfer lg ~array:"tiny" ~dir:Obs.Ledger.H2d
        ~cause:Obs.Ledger.Copyin ~bytes:8 ~dev:0 ~site:"copyin(tiny)"
        ~loc:"t.c:2" ~exec:i ~span:(-1)
        ~time:(float_of_int i) ~duration:1e-6 ~counted:true ~redundant:red
        ~hoist:false)
    [ (1, false); (2, true) ];
  let a = Obs.Ledger.analyze lg ~pcie_latency:lat ~pcie_bandwidth:bw in
  let tiny =
    List.find
      (fun s -> s.Obs.Ledger.s_array = "tiny")
      a.Obs.Ledger.a_sites
  in
  Alcotest.(check bool) "a rewrite exists" true
    (tiny.Obs.Ledger.s_rewrite <> "none");
  Alcotest.(check string) "but it is immaterial" "keep"
    tiny.Obs.Ledger.s_verdict;
  Alcotest.(check (float 0.)) "no apply savings" 0.0 a.Obs.Ledger.a_saved_s

(* ------------------- watermarks and lifetimes ---------------------- *)

let test_watermarks () =
  let lg = Obs.Ledger.create ~devices:2 ~schedule:"block" in
  Obs.Ledger.mem lg ~array:"a" ~dev:0 ~bytes:1000 ~allocated:1000 ~time:0.0;
  Obs.Ledger.mem lg ~array:"b" ~dev:0 ~bytes:500 ~allocated:1500 ~time:1.0;
  Obs.Ledger.mem lg ~array:"c" ~dev:1 ~bytes:200 ~allocated:200 ~time:1.5;
  Obs.Ledger.mem lg ~array:"a" ~dev:0 ~bytes:(-1000) ~allocated:500
    ~time:2.0;
  let a = Obs.Ledger.analyze lg ~pcie_latency:lat ~pcie_bandwidth:bw in
  Alcotest.(check bool) "member 0 watermark" true
    (List.mem (0, 500, 1500) a.Obs.Ledger.a_peaks);
  Alcotest.(check bool) "member 1 watermark" true
    (List.mem (1, 200, 200) a.Obs.Ledger.a_peaks);
  Alcotest.(check int) "peak over members" 1500 (Obs.Ledger.peak_bytes a);
  let lt_a =
    List.find
      (fun l -> l.Obs.Ledger.lt_array = "a" && l.Obs.Ledger.lt_dev = 0)
      a.Obs.Ledger.a_lifetimes
  in
  Alcotest.(check (option (float 0.))) "freed interval closed" (Some 2.0)
    lt_a.Obs.Ledger.lt_free;
  let lt_b =
    List.find (fun l -> l.Obs.Ledger.lt_array = "b") a.Obs.Ledger.a_lifetimes
  in
  Alcotest.(check (option (float 0.))) "live interval open" None
    lt_b.Obs.Ledger.lt_free;
  (* One chrome counter sample per allocation event, on the member's
     device lane (ordinal + 1). *)
  let events = List.map Json_check.parse (Obs.Ledger.chrome_counter_events lg) in
  Alcotest.(check int) "one counter per event" 4 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check (option string)) "counter phase" (Some "C")
        (Option.map Json_check.str_exn (Json_check.member "ph" e));
      Alcotest.(check (option string)) "counter name" (Some "allocated")
        (Option.map Json_check.str_exn (Json_check.member "name" e));
      let tid =
        int_of_float (Json_check.num_exn (Option.get (Json_check.member "tid" e)))
      in
      Alcotest.(check bool) "device-lane tid" true (tid = 1 || tid = 2);
      match Json_check.member "args" e with
      | Some args ->
          Alcotest.(check bool) "live bytes sampled" true
            (match Json_check.member "bytes" args with
            | Some (Json_check.Num v) -> v >= 0.0
            | _ -> false)
      | None -> Alcotest.fail "counter without args")
    events

(* -------------------- real run: counterfactual --------------------- *)

(* The naive BACKPROP moves the same arrays through an in-loop data
   region over and over: the analyzer must find nonzero waste, an apply
   verdict, and a positive predicted saving — the prediction the bench
   memtrace tier confirms against a measured diff-profile delta. *)
let test_backprop_counterfactual () =
  let analyze_of () =
    let lg, o =
      run_ledgered ~instrument:true ~engine:Accrt.Engine.Tree ~devices:1
        ~schedule:Gpusim.Device_set.Block (bench "BACKPROP")
    in
    let mh, md = metrics_bytes o in
    let lh, ld = Obs.Ledger.totals lg in
    Alcotest.(check int) "instrumented h2d conserved" mh lh;
    Alcotest.(check int) "instrumented d2h conserved" md ld;
    let cm = o.Accrt.Interp.device.Gpusim.Device.cm in
    Obs.Ledger.analyze lg ~pcie_latency:cm.Gpusim.Costmodel.pcie_latency
      ~pcie_bandwidth:cm.Gpusim.Costmodel.pcie_bandwidth
  in
  let a = analyze_of () in
  Alcotest.(check bool) "waste found" true (a.Obs.Ledger.a_wasted_bytes > 0);
  Alcotest.(check bool) "an apply verdict" true
    (List.exists
       (fun s -> s.Obs.Ledger.s_verdict = "apply")
       a.Obs.Ledger.a_sites);
  Alcotest.(check bool) "positive predicted saving" true
    (a.Obs.Ledger.a_saved_s > 0.0);
  (* Canonical export: byte-stable across identical runs, with the
     declared schema header. *)
  let j1 = Obs.Ledger.to_json ~name:"BACKPROP" ~seed:42 a in
  let j2 = Obs.Ledger.to_json ~name:"BACKPROP" ~seed:42 (analyze_of ()) in
  Alcotest.(check string) "byte-stable JSON" j1 j2;
  let v = Json_check.parse j1 in
  Alcotest.(check (option string)) "schema" (Some Obs.Ledger.schema)
    (Option.map Json_check.str_exn (Json_check.member "schema" v));
  Alcotest.(check (option (float 0.)))
    "version"
    (Some (float_of_int Obs.Ledger.version))
    (Option.map Json_check.num_exn (Json_check.member "version" v));
  let sites = Json_check.arr_exn (Option.get (Json_check.member "sites" v)) in
  Alcotest.(check int) "one row per site"
    (List.length a.Obs.Ledger.a_sites)
    (List.length sites)

(* --------------------- multi-device attribution -------------------- *)

let test_multi_device_causes () =
  let devices = 4 in
  let lg, o =
    run_ledgered ~engine:Accrt.Engine.Tree ~devices
      ~schedule:Gpusim.Device_set.Block (bench "JACOBI")
  in
  ignore o;
  let entries = Obs.Ledger.entries lg in
  let h2d_devs =
    List.sort_uniq compare
      (List.filter_map
         (fun e ->
           if e.Obs.Ledger.e_counted && e.Obs.Ledger.e_dir = Obs.Ledger.H2d
           then Some e.Obs.Ledger.e_dev
           else None)
         entries)
  in
  Alcotest.(check bool) "uploads attributed to several members" true
    (List.length h2d_devs > 1);
  let a = Obs.Ledger.analyze lg ~pcie_latency:lat ~pcie_bandwidth:bw in
  Alcotest.(check bool) "copyin cause recorded" true
    (List.mem_assoc "copyin" a.Obs.Ledger.a_causes);
  Alcotest.(check bool) "multi-device gather cause recorded" true
    (List.mem_assoc "gather" a.Obs.Ledger.a_causes);
  List.iter
    (fun (c, b) ->
      Alcotest.(check bool) (Fmt.str "cause %s has bytes" c) true (b > 0))
    a.Obs.Ledger.a_causes

let tests =
  List.map conservation_case Suite.Registry.all
  @ [ Alcotest.test_case "analyzer: hoist" `Quick test_analyzer_hoist;
      Alcotest.test_case "analyzer: hoist needs a repeat" `Quick
        test_analyzer_hoist_needs_repeat;
      Alcotest.test_case "analyzer: present" `Quick test_analyzer_present;
      Alcotest.test_case "analyzer: materiality" `Quick
        test_analyzer_materiality;
      Alcotest.test_case "watermarks & lifetimes" `Quick test_watermarks;
      Alcotest.test_case "BACKPROP counterfactual" `Quick
        test_backprop_counterfactual;
      Alcotest.test_case "multi-device causes" `Quick
        test_multi_device_causes ]
