(* Directive/statement editing primitives used by the optimizer. *)

open Minic
open Minic.Ast

let prog_with_update =
  "int main() { float a[4]; float b[4];\nfor (int k = 0; k < 2; k++) \
   {\n#pragma acc update host(a, b)\n}\nreturn 0; }"

let find_update prog =
  List.find_map
    (fun (sid, _, d) -> if d.dir = Acc_update then Some (sid, d) else None)
    (Acc.Query.directives_of prog)

let test_clause_list_edits () =
  let clauses =
    [ Cdata (Dk_copy, [ Acc.Edit.sub "a"; Acc.Edit.sub "b" ]);
      Cprivate [ "t" ] ]
  in
  let without_a = Acc.Edit.remove_data_var clauses "a" in
  (match Acc.Edit.find_data_kind without_a "a" with
  | None -> ()
  | Some _ -> Alcotest.fail "a removed");
  Alcotest.(check bool) "b kept" true
    (Acc.Edit.find_data_kind without_a "b" = Some Dk_copy);
  let moved = Acc.Edit.set_data_kind clauses "a" Dk_create in
  Alcotest.(check bool) "a moved to create" true
    (Acc.Edit.find_data_kind moved "a" = Some Dk_create);
  (* weakening / strengthening ladders *)
  Alcotest.(check bool) "copy -In-> copyout" true
    (Acc.Edit.weaken_kind Dk_copy `In = Dk_copyout);
  Alcotest.(check bool) "copyin -In-> create" true
    (Acc.Edit.weaken_kind Dk_copyin `In = Dk_create);
  Alcotest.(check bool) "create -Out-> copyout" true
    (Acc.Edit.strengthen_kind Dk_create `Out = Dk_copyout);
  Alcotest.(check bool) "copyin -Out-> copy" true
    (Acc.Edit.strengthen_kind Dk_copyin `Out = Dk_copy)

let test_remove_update_var () =
  let prog = Parser.parse_string prog_with_update in
  let sid, d = Option.get (find_update prog) in
  let d' = { d with clauses = Acc.Edit.remove_update_var d.clauses ~host:true "a" } in
  (match Acc.Query.update_host_subs d' with
  | [ { sub_var = "b"; _ } ] -> ()
  | _ -> Alcotest.fail "only b left");
  (* directive rewrite through map_directive *)
  let prog' = Acc.Edit.map_directive prog ~sid ~f:(fun _ -> d') in
  let _, d2 = Option.get (find_update prog') in
  Alcotest.(check int) "one var left in program" 1
    (List.length (Acc.Query.update_host_subs d2))

let test_insert_and_remove () =
  let prog = Parser.parse_string prog_with_update in
  let sid, _ = Option.get (find_update prog) in
  let upd = Acc.Edit.mk_update ~host:false [ "a" ] in
  let prog' = Acc.Edit.insert_before prog ~sid [ upd ] in
  Alcotest.(check int) "two updates now" 2
    (List.length
       (List.filter
          (fun (_, _, d) -> d.dir = Acc_update)
          (Acc.Query.directives_of prog')));
  let prog'' = Acc.Edit.remove_stmt prog' ~sid in
  Alcotest.(check int) "back to one" 1
    (List.length
       (List.filter
          (fun (_, _, d) -> d.dir = Acc_update)
          (Acc.Query.directives_of prog'')))

let test_enclosing_loop () =
  let prog = Parser.parse_string prog_with_update in
  let sid, _ = Option.get (find_update prog) in
  match Acc.Edit.enclosing_loop prog ~sid with
  | Some { skind = Sfor _; _ } -> ()
  | _ -> Alcotest.fail "update is inside the k loop"

let test_wrap_span () =
  let src =
    "int main() { float a[4];\nfor (int i = 0; i < 4; i++) { a[i] = 1.0; \
     }\n#pragma acc kernels loop\nfor (int i = 0; i < 4; i++) { a[i] = \
     a[i] * 2.0; }\nfloat cs = a[0];\nreturn 0; }"
  in
  let prog = Parser.parse_string src in
  let region_sid =
    List.find_map
      (fun (sid, _, d) ->
        if Acc.Query.is_compute d.dir then Some sid else None)
      (Acc.Query.directives_of prog)
    |> Option.get
  in
  let wrapped =
    Acc.Edit.wrap_span prog ~first_sid:region_sid ~last_sid:region_sid
      ~directive:(Acc.Edit.mk_data_directive [ ("a", Dk_copy) ])
  in
  Alcotest.(check bool) "data region added" true
    (Acc.Edit.has_data_region wrapped);
  (* the wrapped program still validates and runs correctly *)
  Acc.Validate.check_program wrapped;
  let env = Typecheck.check wrapped in
  let tp = Codegen.Translate.translate env wrapped in
  let o = Accrt.Interp.run ~coherence:false tp in
  Alcotest.(check (float 0.)) "still correct" 2.0
    (Accrt.Value.to_float (Accrt.Interp.host_scalar o "cs"))

let test_regions_with_var () =
  let src =
    "int main() { float a[4]; float b[4];\n#pragma acc data copyin(a) \
     create(b)\n{\n#pragma acc kernels loop\nfor (int i = 0; i < 4; i++) { \
     b[i] = a[i]; }\n}\nreturn 0; }"
  in
  let prog = Parser.parse_string src in
  (match Acc.Edit.regions_with_var prog ~var:"a" with
  | [ (_, d, sids) ] ->
      Alcotest.(check bool) "is the data region" true (d.dir = Acc_data);
      Alcotest.(check bool) "covers its body" true (List.length sids > 1)
  | _ -> Alcotest.fail "one region for a");
  Alcotest.(check (list int)) "none for unknown" []
    (List.map (fun (s, _, _) -> s)
       (Acc.Edit.regions_with_var prog ~var:"zz"))

(* ------------------------------------------------------------------ *)
(* Round-trip properties: every rewrite primitive the saturate search   *)
(* uses must produce a program whose pretty-printed form reparses to    *)
(* the same AST (structural equality, sid/loc-free), and a no-op edit   *)
(* must leave the program structurally unchanged.                       *)
(* ------------------------------------------------------------------ *)

let roundtrips name prog =
  let printed = Minic.Pretty.program_to_string prog in
  let reparsed = Parser.parse_string ~file:"<roundtrip>" printed in
  Alcotest.(check bool) (name ^ ": print/reparse round trip") true
    (Ast.equal_program prog reparsed)

let hoist_src =
  "int main() { float a[8]; float b[8];\n\
   for (int i = 0; i < 8; i++) { a[i] = i; b[i] = 0.0; }\n\
   for (int t = 0; t < 4; t++) {\n\
   #pragma acc kernels loop copyin(a) copy(b)\n\
   for (int i = 0; i < 8; i++) { b[i] = b[i] + a[i]; }\n\
   }\nfloat cs = b[0];\nreturn 0; }"

let compute_sids prog =
  List.filter_map
    (fun (sid, _, d) ->
      if Acc.Query.is_compute d.dir then Some sid else None)
    (Acc.Query.directives_of prog)

let test_roundtrip_hoist () =
  (* the hoist edit: wrap the enclosing loop in a fresh data region *)
  let prog = Parser.parse_string hoist_src in
  let ksid = List.hd (compute_sids prog) in
  let loop = Option.get (Acc.Edit.enclosing_loop prog ~sid:ksid) in
  let hoisted =
    Acc.Edit.wrap_stmt prog ~sid:loop.sid
      ~directive:
        (Acc.Edit.mk_data_directive
           [ ("a", Dk_copyin); ("b", Dk_copy) ])
  in
  Alcotest.(check bool) "hoist changed the program" false
    (Ast.equal_program prog hoisted);
  Alcotest.(check bool) "data region present" true
    (Acc.Edit.has_data_region hoisted);
  roundtrips "hoist" hoisted

let merge_src =
  "int main() { float y[8];\n\
   #pragma acc kernels loop copy(y)\n\
   for (int i = 0; i < 8; i++) { y[i] = i; }\n\
   #pragma acc kernels loop copy(y)\n\
   for (int i = 0; i < 8; i++) { y[i] = y[i] * 2.0; }\n\
   float cs = y[0];\nreturn 0; }"

let test_roundtrip_merge () =
  (* the merge edit: one data region spanning two adjacent kernels *)
  let prog = Parser.parse_string merge_src in
  match compute_sids prog with
  | [ s1; s2 ] ->
      let first_sid = min s1 s2 and last_sid = max s1 s2 in
      let merged =
        Acc.Edit.wrap_span prog ~first_sid ~last_sid
          ~directive:(Acc.Edit.mk_data_directive [ ("y", Dk_copy) ])
      in
      Alcotest.(check bool) "merge changed the program" false
        (Ast.equal_program prog merged);
      roundtrips "merge" merged
  | _ -> Alcotest.fail "expected exactly two compute regions"

let test_roundtrip_present () =
  (* the present edit: retarget a data clause's kind in place *)
  let prog = Parser.parse_string merge_src in
  let sid = List.hd (compute_sids prog) in
  let pinned =
    Acc.Edit.map_directive prog ~sid ~f:(fun d ->
        { d with clauses = Acc.Edit.set_data_kind d.clauses "y" Dk_present })
  in
  Alcotest.(check bool) "present changed the program" false
    (Ast.equal_program prog pinned);
  roundtrips "present" pinned;
  (* and the program itself round-trips before any edit *)
  roundtrips "unedited" prog

let test_noop_edit_identity () =
  let prog = Parser.parse_string hoist_src in
  let ksid = List.hd (compute_sids prog) in
  (* identity directive rewrite *)
  let same = Acc.Edit.map_directive prog ~sid:ksid ~f:(fun d -> d) in
  Alcotest.(check bool) "map_directive id is identity" true
    (Ast.equal_program prog same);
  (* removing a variable the clause list does not mention *)
  let same =
    Acc.Edit.map_directive prog ~sid:ksid ~f:(fun d ->
        { d with clauses = Acc.Edit.remove_data_var d.clauses "nosuch" })
  in
  Alcotest.(check bool) "remove_data_var of absent var is identity" true
    (Ast.equal_program prog same);
  (* rewriting a sid that carries no directive *)
  let same = Acc.Edit.map_directive prog ~sid:99999 ~f:(fun d -> d) in
  Alcotest.(check bool) "map_directive of unknown sid is identity" true
    (Ast.equal_program prog same);
  (* wrap_span over sids that are not top-level statements of main is a
     documented no-op (the saturate search rejects it as such) *)
  let same =
    Acc.Edit.wrap_span prog ~first_sid:99999 ~last_sid:99999
      ~directive:(Acc.Edit.mk_data_directive [ ("a", Dk_copy) ])
  in
  Alcotest.(check bool) "wrap_span of unknown sids is identity" true
    (Ast.equal_program prog same)

let tests =
  [ Alcotest.test_case "clause-list edits" `Quick test_clause_list_edits;
    Alcotest.test_case "remove update var" `Quick test_remove_update_var;
    Alcotest.test_case "insert and remove statements" `Quick
      test_insert_and_remove;
    Alcotest.test_case "enclosing loop" `Quick test_enclosing_loop;
    Alcotest.test_case "wrap span with data region" `Quick test_wrap_span;
    Alcotest.test_case "regions with var" `Quick test_regions_with_var;
    Alcotest.test_case "round trip: hoist edit" `Quick test_roundtrip_hoist;
    Alcotest.test_case "round trip: merge edit" `Quick test_roundtrip_merge;
    Alcotest.test_case "round trip: present edit" `Quick
      test_roundtrip_present;
    Alcotest.test_case "no-op edits are identity" `Quick
      test_noop_edit_identity ]
