let () =
  Alcotest.run "openarc"
    [ ("lexer", Test_lexer.tests);
      ("parser", Test_parser.tests);
      ("pretty", Test_pretty.tests);
      ("typecheck", Test_typecheck.tests);
      ("validate", Test_validate.tests);
      ("analysis", Test_analysis.tests);
      ("gpusim", Test_gpusim.tests);
      ("eval", Test_eval.tests);
      ("translate", Test_translate.tests);
      ("interp", Test_interp.tests);
      ("kernel_exec", Test_kernel_exec.tests);
      ("coherence", Test_coherence.tests);
      ("tprog_analyses", Test_tprog_analyses.tests);
      ("checkgen", Test_checkgen.tests);
      ("intervals", Test_intervals.tests);
      ("verify", Test_verify.tests);
      ("session", Test_session.tests);
      ("edit", Test_edit.tests);
      ("multidim", Test_multidim.tests);
      ("inline", Test_inline.tests);
      ("features", Test_features.tests);
      ("suite", Test_suite.tests);
      ("engine_diff", Test_engine_diff.tests);
      ("fault_plan", Test_fault_plan.tests);
      ("resilience", Test_resilience.tests);
      ("lint", Test_lint.tests);
      ("symeq", Test_symeq.tests);
      ("obs", Test_obs.tests);
      ("ledger", Test_ledger.tests);
      ("diff", Test_diff.tests);
      ("saturate", Test_saturate.tests);
      ("cli", Test_cli.tests);
      ("bench_cli", Test_bench_cli.tests);
      ("wall_cli", Test_wall_cli.tests) ]
