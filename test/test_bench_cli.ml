(* Integration tests of the bench driver's sentinel subcommands: trend
   accumulation, regress against the committed baseline (byte-reproducible
   when clean, exit 1 with culprits under a seeded cost-model
   perturbation), and the exit-2 usage convention. *)

let exe = "../bench/main.exe"

let baseline = "../BENCH_profile.json"

let available = Sys.file_exists exe && Sys.file_exists baseline

(* Separate stdout/stderr capture: the usage satellite requires the
   diagnostics on stderr specifically. *)
let run_cmd ?(env = "") args =
  let out = Filename.temp_file "bench_cli" ".out" in
  let err = Filename.temp_file "bench_cli" ".err" in
  let cmd =
    Fmt.str "%s%s %s > %s 2> %s"
      (if env = "" then "" else env ^ " ")
      exe args (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let read p =
    let ic = open_in_bin p in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove p;
    s
  in
  let o = read out and e = read err in
  (code, o, e)

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_unknown_subcommand () =
  if available then begin
    let code, out, err = run_cmd "frobnicate" in
    Alcotest.(check int) "unknown subcommand: exit 2" 2 code;
    Alcotest.(check string) "nothing on stdout" "" out;
    Alcotest.(check bool) "names the offender on stderr" true
      (contains ~needle:"unknown experiment 'frobnicate'" err);
    Alcotest.(check bool) "usage on stderr" true
      (contains ~needle:"usage: main.exe" err);
    Alcotest.(check bool) "usage lists the sentinel" true
      (contains ~needle:"regress" err)
  end

let test_unknown_flag () =
  if available then begin
    let code, _, err = run_cmd "regress --frobnicate yes" in
    Alcotest.(check int) "unknown flag: exit 2" 2 code;
    Alcotest.(check bool) "flag named on stderr" true
      (contains ~needle:"unknown option '--frobnicate'" err);
    let code, _, err = run_cmd "trend --out" in
    Alcotest.(check int) "missing value: exit 2" 2 code;
    Alcotest.(check bool) "missing value named" true
      (contains ~needle:"requires a value" err);
    let code, _, err = run_cmd "regress --benches nosuchbenchmark" in
    Alcotest.(check int) "unknown benchmark: exit 2" 2 code;
    Alcotest.(check bool) "benchmark named" true
      (contains ~needle:"unknown benchmark" err)
  end

let regress_args ?(extra = "") () =
  Fmt.str "regress --baseline %s --benches jacobi,ep,srad%s" baseline extra

let test_regress_clean () =
  if available then begin
    (* the committed baseline vs the current tree: exactly zero, twice *)
    let code1, out1, err1 = run_cmd (regress_args ()) in
    Alcotest.(check int) "clean regress: exit 0" 0 code1;
    Alcotest.(check string) "clean regress: quiet stderr" "" err1;
    Alcotest.(check bool) "all within tolerance" true
      (contains ~needle:"3/3 benchmark(s) within tolerance" out1);
    Alcotest.(check bool) "deltas are exactly zero" true
      (contains ~needle:"delta +0.000000000 s" out1);
    let code2, out2, _ = run_cmd (regress_args ()) in
    Alcotest.(check int) "second run: exit 0" 0 code2;
    Alcotest.(check string) "byte-reproducible report" out1 out2
  end

let test_regress_json () =
  if available then begin
    let json = Filename.temp_file "bench_regress" ".json" in
    let code, _, _ =
      run_cmd (regress_args ~extra:(" --json " ^ Filename.quote json) ())
    in
    Alcotest.(check int) "regress --json: exit 0" 0 code;
    let ic = open_in_bin json in
    let doc = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove json;
    let v = Json_check.parse doc in
    Alcotest.(check (option string)) "schema"
      (Some "openarc.obs.bench-regress")
      (Option.map Json_check.str_exn (Json_check.member "schema" v));
    Alcotest.(check (option string)) "status ok" (Some "ok")
      (Option.map Json_check.str_exn (Json_check.member "status" v));
    let rows =
      Json_check.arr_exn (Option.get (Json_check.member "benchmarks" v))
    in
    Alcotest.(check int) "three benchmarks" 3 (List.length rows);
    List.iter
      (fun rv ->
        Alcotest.(check (option string)) "row status ok" (Some "ok")
          (Option.map Json_check.str_exn (Json_check.member "status" rv));
        Alcotest.(check bool) "zero delta" true
          (Json_check.member "delta" rv = Some (Json_check.Num 0.0)))
      rows
  end

let test_regress_detects_seeded_regression () =
  if available then begin
    (* the seeded synthetic regression: scale the PCIe fixed latency 8x
       through the cost model's test-only hook; the sentinel must exit 1
       and attribute the blow-up to transfer time *)
    let json = Filename.temp_file "bench_regress" ".json" in
    let code, out, _ =
      run_cmd ~env:"OPENARC_COSTMODEL_PERTURB=8"
        (regress_args ~extra:(" --json " ^ Filename.quote json) ())
    in
    Alcotest.(check int) "seeded regression: exit 1" 1 code;
    Alcotest.(check bool) "flagged" true
      (contains ~needle:"REGRESSION" out);
    Alcotest.(check bool) "culprit directives named" true
      (contains ~needle:"culprit:" out);
    Alcotest.(check bool) "attributed to transfers" true
      (contains ~needle:"(Mem Transfer)" out);
    let ic = open_in_bin json in
    let doc = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove json;
    let v = Json_check.parse doc in
    Alcotest.(check (option string)) "json status regression"
      (Some "regression")
      (Option.map Json_check.str_exn (Json_check.member "status" v));
    let rows =
      Json_check.arr_exn (Option.get (Json_check.member "benchmarks" v))
    in
    List.iter
      (fun rv ->
        Alcotest.(check (option string)) "every row regressed"
          (Some "regression")
          (Option.map Json_check.str_exn (Json_check.member "status" rv));
        let culprits =
          Json_check.arr_exn (Option.get (Json_check.member "culprits" rv))
        in
        Alcotest.(check bool) "culprits recorded" true (culprits <> []))
      rows
  end

let test_trend_accumulates () =
  if available then begin
    let file = Filename.temp_file "bench_trend" ".jsonl" in
    Sys.remove file;
    let go label =
      let code, _, _ =
        run_cmd
          (Fmt.str "trend --out %s --benches jacobi --label %s"
             (Filename.quote file) label)
      in
      Alcotest.(check int) (label ^ ": exit 0") 0 code
    in
    go "first";
    go "second";
    let ic = open_in_bin file in
    let doc = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove file;
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' doc)
    in
    Alcotest.(check int) "two appended records" 2 (List.length lines);
    List.iteri
      (fun i line ->
        let v = Json_check.parse line in
        Alcotest.(check (option string))
          (Fmt.str "line %d schema" i)
          (Some "openarc.obs.bench-trend")
          (Option.map Json_check.str_exn (Json_check.member "schema" v));
        Alcotest.(check (option string))
          (Fmt.str "line %d name" i)
          (Some "JACOBI")
          (Option.map Json_check.str_exn (Json_check.member "name" v));
        Alcotest.(check (option string))
          (Fmt.str "line %d label" i)
          (Some (if i = 0 then "first" else "second"))
          (Option.map Json_check.str_exn (Json_check.member "label" v));
        Alcotest.(check bool)
          (Fmt.str "line %d carries counters" i)
          true
          (match Json_check.member "counters" v with
          | Some (Json_check.Obj kvs) -> List.mem_assoc "transfers" kvs
          | _ -> false))
      lines;
    (* identical runs produce identical records modulo the label *)
    match lines with
    | [ l1; l2 ] ->
        let strip l =
          Str.global_replace
            (Str.regexp "\"label\": \"[a-z]*\"")
            "\"label\": \"\"" l
        in
        Alcotest.(check string) "deterministic modulo label" (strip l1)
          (strip l2)
    | _ -> Alcotest.fail "expected two lines"
  end

let tests =
  [ Alcotest.test_case "unknown subcommand" `Quick test_unknown_subcommand;
    Alcotest.test_case "unknown flag" `Quick test_unknown_flag;
    Alcotest.test_case "regress clean" `Quick test_regress_clean;
    Alcotest.test_case "regress json" `Quick test_regress_json;
    Alcotest.test_case "regress detects seeded regression" `Quick
      test_regress_detects_seeded_regression;
    Alcotest.test_case "trend accumulates" `Quick test_trend_accumulates ]
