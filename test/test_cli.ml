(* Integration tests of the openarc CLI binary: each subcommand runs on a
   bundled benchmark, exits cleanly, and prints its key artifacts. *)

let exe = "../bin/openarc.exe"

let available = Sys.file_exists exe

let run_cmd args =
  let out = Filename.temp_file "openarc_cli" ".out" in
  let cmd = Fmt.str "%s %s > %s 2>&1" exe args (Filename.quote out) in
  let code = Sys.command cmd in
  let ic = open_in_bin out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains ~needle s =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let check_cmd name args ~expect =
  if not available then ()
  else begin
    let code, out = run_cmd args in
    Alcotest.(check int) (name ^ ": exit code") 0 code;
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Fmt.str "%s: output mentions %S" name needle)
          true (contains ~needle out))
      expect
  end

let test_benchmarks () =
  check_cmd "benchmarks" "benchmarks" ~expect:[ "JACOBI"; "CG"; "SRAD" ]

let test_compile () =
  check_cmd "compile" "compile bench:ep" ~expect:[ "main_kernel0"; "seeds" ];
  check_cmd "compile --emit-cuda" "compile bench:ep --emit-cuda"
    ~expect:[ "__global__ void main_kernel0"; "reduction(+)" ]

let test_run () =
  check_cmd "run" "run bench:jacobi"
    ~expect:[ "launches"; "Mem Transfer" ];
  check_cmd "run --instrument" "run bench:jacobi --instrument"
    ~expect:[ "report(s), grouped:"; "redundant"; "suggestions:" ];
  check_cmd "run --fine-grained" "run bench:jacobi --instrument --fine-grained"
    ~expect:[ "report(s), grouped:" ]

let test_verify () =
  check_cmd "verify ok" "verify bench:jacobi"
    ~expect:[ "[OK]   main_kernel0"; "0 kernel(s) with detected errors" ];
  check_cmd "verify fault" "verify bench:ep --fault-injection"
    ~expect:[ "[FAIL] main_kernel1"; "1 kernel(s) with detected errors" ];
  check_cmd "verify selection"
    "verify bench:ep --fault-injection --options \
     complement=0,kernels=main_kernel0"
    ~expect:[ "[OK]   main_kernel0" ];
  check_cmd "verify demotion" "verify bench:jacobi --show-transformed \
                               main_kernel0"
    ~expect:[ "async(1)"; "#pragma acc wait(1)" ]

let test_verify_symbolic () =
  check_cmd "verify --symbolic" "verify bench:jacobi --symbolic"
    ~expect:
      [ "[PROVED]"; "2 proved, 0 disproved, 0 unknown";
        "[symbolically proved]"; "0 kernel(s) with detected errors" ];
  check_cmd "verify --symbolic fault" "verify bench:ep --fault-injection \
                                       --symbolic"
    ~expect:[ "[DISPROVED]"; "[FAIL] main_kernel1" ];
  if available then begin
    let json = Filename.temp_file "openarc_symeq" ".json" in
    let code, _ =
      run_cmd
        (Fmt.str "verify bench:jacobi --symeq-json %s"
           (Filename.quote json))
    in
    Alcotest.(check int) "verify --symeq-json: exit 0" 0 code;
    let ic = open_in_bin json in
    let doc = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove json;
    Alcotest.(check bool) "symeq json: schema" true
      (contains ~needle:"\"schema\": \"openarc.obs.symeq\"" doc);
    (* the document is the canonical one: it parses and round-trips *)
    match Symeq.Report.of_json doc with
    | Error e -> Alcotest.fail ("symeq json rejected: " ^ e)
    | Ok t ->
        Alcotest.(check int) "symeq json: all kernels proved"
          (List.length t.Symeq.Report.result.Symeq.Engine.kernels)
          t.Symeq.Report.result.Symeq.Engine.proved
  end

let test_unknown_flag () =
  (* argument-parsing errors are malformed input: usage on stderr, exit
     2 (not cmdliner's default 124) *)
  if available then begin
    let out = Filename.temp_file "openarc_cli" ".out" in
    let err = Filename.temp_file "openarc_cli" ".err" in
    let code =
      Sys.command
        (Fmt.str "%s verify bench:jacobi --no-such-flag > %s 2> %s" exe
           (Filename.quote out) (Filename.quote err))
    in
    let stdout_text = read_file out and stderr_text = read_file err in
    Sys.remove out;
    Sys.remove err;
    Alcotest.(check int) "unknown flag: exit 2" 2 code;
    Alcotest.(check bool) "unknown flag: named on stderr" true
      (contains ~needle:"--no-such-flag" stderr_text);
    Alcotest.(check bool) "unknown flag: usage on stderr" true
      (contains ~needle:"Usage: openarc verify" stderr_text);
    Alcotest.(check string) "unknown flag: stdout silent" "" stdout_text;
    let code =
      Sys.command
        (Fmt.str "%s no-such-command > /dev/null 2> /dev/null" exe)
    in
    Alcotest.(check int) "unknown subcommand: exit 2" 2 code
  end

let test_optimize () =
  check_cmd "optimize" "optimize bench:jacobi --outputs a,b,resid"
    ~expect:[ "converged"; "transfers:" ]

let test_saturate () =
  check_cmd "saturate" "saturate bench:jacobi"
    ~expect:[ "saturate bench:jacobi"; "accepted"; "simulated time" ];
  check_cmd "saturate --json" "saturate bench:jacobi --json --max-steps 2"
    ~expect:
      [ "\"schema\": \"openarc.obs.saturate\""; "\"version\": 1";
        "\"steps\": ["; "\"engine_compile_hits\"" ];
  if available then begin
    (* --apply without --out: the patched source is the stdout payload,
       the report goes to stderr — so stdout | cc-style tools compose *)
    let out = Filename.temp_file "openarc_cli" ".out" in
    let err = Filename.temp_file "openarc_cli" ".err" in
    let code =
      Sys.command
        (Fmt.str "%s saturate bench:jacobi --apply --max-steps 4 > %s 2> %s"
           exe (Filename.quote out) (Filename.quote err))
    in
    let stdout_text = read_file out and stderr_text = read_file err in
    Sys.remove out;
    Sys.remove err;
    Alcotest.(check int) "--apply to stdout: exit 0" 0 code;
    Alcotest.(check bool) "--apply to stdout: patched program" true
      (contains ~needle:"#pragma acc" stdout_text
      && contains ~needle:"int main" stdout_text);
    Alcotest.(check bool) "--apply to stdout: report on stderr" true
      (contains ~needle:"saturate bench:jacobi" stderr_text)
  end

let test_saturate_errors () =
  if available then begin
    (* malformed inputs are usage errors: exit 2, usage on stderr *)
    let code, out = run_cmd "saturate bench:jacobi --devices 0" in
    Alcotest.(check int) "saturate --devices 0: exit 2" 2 code;
    Alcotest.(check bool) "saturate --devices 0: message" true
      (contains ~needle:"invalid --devices" out);
    let code, out = run_cmd "saturate bench:jacobi --max-steps 0" in
    Alcotest.(check int) "saturate --max-steps 0: exit 2" 2 code;
    Alcotest.(check bool) "saturate --max-steps 0: message" true
      (contains ~needle:"invalid --max-steps" out);
    (* --json and --apply both want stdout: refusing beats interleaving *)
    let code, out = run_cmd "saturate bench:jacobi --json --apply" in
    Alcotest.(check int) "saturate --json --apply: exit 2" 2 code;
    Alcotest.(check bool) "saturate --json --apply: names the fix" true
      (contains ~needle:"--out" out);
    (* unknown flags on both optimizer entry points: usage to stderr,
       stdout silent, exit 2 *)
    List.iter
      (fun sub ->
        let out = Filename.temp_file "openarc_cli" ".out" in
        let err = Filename.temp_file "openarc_cli" ".err" in
        let code =
          Sys.command
            (Fmt.str "%s %s bench:jacobi --no-such-flag > %s 2> %s" exe sub
               (Filename.quote out) (Filename.quote err))
        in
        let stdout_text = read_file out and stderr_text = read_file err in
        Sys.remove out;
        Sys.remove err;
        Alcotest.(check int) (sub ^ " unknown flag: exit 2") 2 code;
        Alcotest.(check bool) (sub ^ " unknown flag: usage on stderr") true
          (contains ~needle:("Usage: openarc " ^ sub) stderr_text);
        Alcotest.(check string) (sub ^ " unknown flag: stdout silent") ""
          stdout_text)
      [ "saturate"; "optimize" ]
  end

let test_multi_device () =
  check_cmd "run --devices" "run bench:jacobi --devices 2"
    ~expect:[ "launches"; "Mem Transfer" ];
  check_cmd "run --schedule cyclic" "run bench:jacobi --devices 2 \
                                     --schedule cyclic"
    ~expect:[ "launches" ];
  check_cmd "run failover"
    "run bench:jacobi --devices 2 --device-faults \
     'device-lost:main_kernel0#1' --resilience retry"
    ~expect:[ "failover: 1 device(s) lost" ];
  if available then begin
    (* malformed device counts and out-of-range #DEV selectors are usage
       errors: exit 2, never a crash or a silent single-device run *)
    let code, out = run_cmd "run bench:jacobi --devices 0" in
    Alcotest.(check int) "--devices 0: exit 2" 2 code;
    Alcotest.(check bool) "--devices 0: message" true
      (contains ~needle:"invalid --devices" out);
    let code, out =
      run_cmd
        "run bench:jacobi --devices 2 --device-faults 'device-lost#3'"
    in
    Alcotest.(check int) "out-of-range #DEV: exit 2" 2 code;
    Alcotest.(check bool) "out-of-range #DEV: names the fix" true
      (contains ~needle:"need --devices >= 4" out)
  end

let test_trace () =
  if available then begin
    let tracefile = Filename.temp_file "openarc_trace" ".json" in
    let code, out =
      run_cmd (Fmt.str "run bench:ep --trace %s" (Filename.quote tracefile))
    in
    Alcotest.(check int) "trace: exit" 0 code;
    Alcotest.(check bool) "trace: reported" true
      (contains ~needle:"timeline" out);
    let ic = open_in_bin tracefile in
    let json = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove tracefile;
    Alcotest.(check bool) "trace: chrome json" true
      (contains ~needle:"\"ph\": \"X\"" json)
  end

let test_profile () =
  check_cmd "profile" "profile bench:jacobi"
    ~expect:
      [ "directive"; "TOTAL"; "conservation: exact"; "Mem Transfer" ];
  check_cmd "profile --instrument" "profile bench:jacobi --instrument"
    ~expect:[ "conservation: exact"; "coherence transition(s)";
              "replay consistent" ];
  if available then begin
    (* all four exporters write well-formed artifacts *)
    let tmp suffix = Filename.temp_file "openarc_profile" suffix in
    let json = tmp ".json" and flame = tmp ".folded" in
    let events = tmp ".jsonl" and trace = tmp ".trace.json" in
    let code, _ =
      run_cmd
        (Fmt.str
           "profile bench:jacobi --instrument --json %s --flame %s \
            --events %s --trace %s"
           (Filename.quote json) (Filename.quote flame)
           (Filename.quote events) (Filename.quote trace))
    in
    Alcotest.(check int) "profile exporters: exit 0" 0 code;
    Alcotest.(check bool) "json: schema" true
      (contains ~needle:"\"schema\": \"openarc.obs.profile\""
         (read_file json));
    Alcotest.(check bool) "flame: folded stacks" true
      (contains ~needle:";" (read_file flame));
    let ev = read_file events in
    Alcotest.(check bool) "events: span lines" true
      (contains ~needle:"\"type\": \"span_begin\"" ev);
    Alcotest.(check bool) "events: audit lines" true
      (contains ~needle:"\"type\": \"audit\"" ev);
    Alcotest.(check bool) "trace: chrome json" true
      (contains ~needle:"\"ph\": \"X\"" (read_file trace));
    List.iter Sys.remove [ json; flame; events; trace ];
    (* determinism: same seed, byte-identical profile JSON *)
    let j1 = tmp ".json" and j2 = tmp ".json" in
    let _ =
      run_cmd (Fmt.str "profile bench:ep --json %s" (Filename.quote j1))
    in
    let _ =
      run_cmd (Fmt.str "profile bench:ep --json %s" (Filename.quote j2))
    in
    Alcotest.(check string) "profile json reproducible" (read_file j1)
      (read_file j2);
    List.iter Sys.remove [ j1; j2 ];
    (* profiling a faulty resilient run still conserves *)
    let code, out =
      run_cmd
        "profile bench:jacobi --device-faults xfer-fail --resilience retry"
    in
    Alcotest.(check int) "faulty profile: exit 0" 0 code;
    Alcotest.(check bool) "faulty profile conserves" true
      (contains ~needle:"conservation: exact" out)
  end

let test_verify_trace () =
  if available then begin
    let trace = Filename.temp_file "openarc_verify" ".json" in
    let events = Filename.temp_file "openarc_verify" ".jsonl" in
    let code, _ =
      run_cmd
        (Fmt.str "verify bench:jacobi --trace %s --events %s"
           (Filename.quote trace) (Filename.quote events))
    in
    Alcotest.(check int) "verify --trace: exit 0" 0 code;
    Alcotest.(check bool) "verify trace: chrome json" true
      (contains ~needle:"\"ph\": \"X\"" (read_file trace));
    Alcotest.(check bool) "verify events: phase span" true
      (contains ~needle:"\"type\": \"span_begin\"" (read_file events));
    List.iter Sys.remove [ trace; events ]
  end

let test_fault_matrix_trace () =
  if available then begin
    let trace = Filename.temp_file "openarc_matrix" ".json" in
    let code, _ =
      run_cmd
        (Fmt.str
           "fault-matrix --benches jacobi --kinds xfer-fail --trace %s"
           (Filename.quote trace))
    in
    Alcotest.(check int) "fault-matrix --trace: exit 0" 0 code;
    let j = read_file trace in
    Sys.remove trace;
    Alcotest.(check bool) "per-cell process names" true
      (contains ~needle:"process_name" j);
    Alcotest.(check bool) "cell label" true
      (contains ~needle:"JACOBI/xfer-fail/" j)
  end

let test_lint () =
  check_cmd "lint clean optimized" "lint bench:jacobi:opt --deny-warnings"
    ~expect:[ "0 error(s)" ];
  if available then begin
    (* the unoptimized variant carries redundant-transfer warnings: exit 0
       normally, exit 1 under --deny-warnings *)
    let code, out = run_cmd "lint bench:jacobi" in
    Alcotest.(check int) "lint warnings: exit 0" 0 code;
    Alcotest.(check bool) "lint warnings: ACC-XFER-004 reported" true
      (contains ~needle:"ACC-XFER-004" out);
    let code, _ = run_cmd "lint bench:jacobi --deny-warnings" in
    Alcotest.(check int) "lint --deny-warnings: exit 1" 1 code;
    (* injected faults are errors: exit 1, with fix-its *)
    let code, out = run_cmd "lint bench:ep --fault-injection" in
    Alcotest.(check int) "lint faults: exit 1" 1 code;
    Alcotest.(check bool) "lint faults: RACE-001" true
      (contains ~needle:"ACC-RACE-001" out);
    Alcotest.(check bool) "lint faults: RACE-002" true
      (contains ~needle:"ACC-RACE-002" out);
    Alcotest.(check bool) "lint faults: fix-it shown" true
      (contains ~needle:"fix:" out);
    (* JSON rendering *)
    let code, out = run_cmd "lint bench:ep --fault-injection --json" in
    Alcotest.(check int) "lint --json: exit 1" 1 code;
    Alcotest.(check bool) "lint --json: code field" true
      (contains ~needle:"\"code\": \"ACC-RACE-002\"" out)
  end

let test_version () =
  if available then begin
    let code, out = run_cmd "--version" in
    Alcotest.(check int) "--version: exit 0" 0 code;
    Alcotest.(check bool) "--version: prints a version" true
      (contains ~needle:"1.0.0" out)
  end

let test_error_handling () =
  if available then begin
    let code, _ = run_cmd "run bench:nosuchbenchmark" in
    Alcotest.(check bool) "unknown benchmark fails" true (code <> 0);
    let code, _ = run_cmd "verify /nonexistent/file.mc" in
    Alcotest.(check bool) "missing file fails" true (code <> 0);
    (* malformed input exits 2, runtime trouble exits 1 *)
    let bad = Filename.temp_file "openarc_cli" ".c" in
    let oc = open_out bad in
    output_string oc "int main() { return 0 }\n";
    close_out oc;
    let code, _ = run_cmd (Fmt.str "compile %s" (Filename.quote bad)) in
    Sys.remove bad;
    Alcotest.(check int) "syntax error: exit 2" 2 code;
    let invalid = Filename.temp_file "openarc_cli" ".c" in
    let oc = open_out invalid in
    output_string oc
      "int main() { float a[4];\n#pragma acc data copyin(a) copyout(a)\n{ \
       }\nreturn 0; }\n";
    close_out oc;
    let code, _ = run_cmd (Fmt.str "compile %s" (Filename.quote invalid)) in
    Sys.remove invalid;
    Alcotest.(check int) "validation error: exit 2" 2 code
  end

let test_device_faults () =
  if available then begin
    (* recovered faulty run: exit 0 with the fault/recovery report *)
    let code, out =
      run_cmd "run bench:jacobi --device-faults xfer-fail --resilience retry"
    in
    Alcotest.(check int) "recovered run: exit 0" 0 code;
    Alcotest.(check bool) "report printed" true
      (contains ~needle:"fault/recovery report" out);
    Alcotest.(check bool) "retry logged" true
      (contains ~needle:"-> retry (ok)" out);
    (* no policy: the raw typed fault escapes with its diagnostic code *)
    let code, out = run_cmd "run bench:jacobi --device-faults xfer-fail" in
    Alcotest.(check int) "raw fault: exit 1" 1 code;
    Alcotest.(check bool) "raw fault: ACC-FAULT-002" true
      (contains ~needle:"ACC-FAULT-002" out);
    (* a fault the policy cannot mask: the other diagnostic code *)
    let code, out =
      run_cmd
        "run bench:jacobi --device-faults device-lost --resilience retry"
    in
    Alcotest.(check int) "unrecovered: exit 1" 1 code;
    Alcotest.(check bool) "unrecovered: ACC-FAULT-001" true
      (contains ~needle:"ACC-FAULT-001" out);
    (* malformed spec / policy: exit 2 like any malformed input *)
    let code, _ = run_cmd "run bench:jacobi --device-faults frobnicate" in
    Alcotest.(check int) "malformed spec: exit 2" 2 code;
    let code, _ = run_cmd "run bench:jacobi --resilience bogus" in
    Alcotest.(check int) "malformed policy: exit 2" 2 code;
    (* device loss under [full]: completes in host mode, JSON report *)
    let json = Filename.temp_file "openarc_faults" ".json" in
    let code, out =
      run_cmd
        (Fmt.str
           "run bench:jacobi --device-faults device-lost --resilience full \
            --faults-json %s"
           (Filename.quote json))
    in
    Alcotest.(check int) "host mode: exit 0" 0 code;
    Alcotest.(check bool) "host mode noted" true
      (contains ~needle:"host mode" out);
    let ic = open_in_bin json in
    let j = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove json;
    Alcotest.(check bool) "json: device_lost" true
      (contains ~needle:"\"device_lost\": true" j);
    Alcotest.(check bool) "json: seed" true (contains ~needle:"\"seed\": 42" j)
  end

let test_diff_profile () =
  if available then begin
    let tmp () = Filename.temp_file "openarc_diff" ".json" in
    let p1 = tmp () and p2 = tmp () and popt = tmp () in
    let gen variant path =
      let code, _ =
        run_cmd
          (Fmt.str "profile %s --json %s" variant (Filename.quote path))
      in
      Alcotest.(check int) (variant ^ ": profile exit 0") 0 code
    in
    gen "bench:jacobi" p1;
    gen "bench:jacobi" p2;
    gen "bench:jacobi:opt" popt;
    (* two same-seed runs of the same program: all-zero delta, exit 0 *)
    let code, out =
      run_cmd
        (Fmt.str "diff-profile %s %s" (Filename.quote p1)
           (Filename.quote p2))
    in
    Alcotest.(check int) "identical pair: exit 0" 0 code;
    Alcotest.(check bool) "identical pair: all-zero" true
      (contains ~needle:"all-zero delta: the profiles are identical" out);
    (* naive vs optimized: the win is attributed to transfers *)
    let code, out =
      run_cmd
        (Fmt.str "diff-profile %s %s" (Filename.quote p1)
           (Filename.quote popt))
    in
    Alcotest.(check int) "naive-vs-opt: exit 0" 0 code;
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Fmt.str "naive-vs-opt mentions %S" needle)
          true (contains ~needle out))
      [ "Mem Transfer"; "vanished"; "appeared"; "counters:" ];
    (* --json emits the canonical diff document *)
    let dj = tmp () in
    let code, _ =
      run_cmd
        (Fmt.str "diff-profile %s %s --json %s" (Filename.quote p1)
           (Filename.quote popt) (Filename.quote dj))
    in
    Alcotest.(check int) "diff --json: exit 0" 0 code;
    Alcotest.(check bool) "diff json schema" true
      (contains ~needle:"\"schema\": \"openarc.obs.profile-diff\""
         (read_file dj));
    (* malformed input: exit 2 *)
    let bad = tmp () in
    let oc = open_out bad in
    output_string oc "{ not a profile\n";
    close_out oc;
    let code, _ =
      run_cmd
        (Fmt.str "diff-profile %s %s" (Filename.quote bad)
           (Filename.quote p1))
    in
    Alcotest.(check int) "malformed profile: exit 2" 2 code;
    let code, _ =
      run_cmd (Fmt.str "diff-profile %s /nonexistent.json" (Filename.quote p1))
    in
    Alcotest.(check int) "missing file: exit 2" 2 code;
    List.iter Sys.remove [ p1; p2; popt; dj; bad ]
  end

let test_session () =
  check_cmd "session" "session bench:jacobi --outputs a,b,resid"
    ~expect:[ "iteration 1"; "converged" ];
  check_cmd "session --report" "session bench:jacobi --outputs a,b,resid \
                                --report"
    ~expect:
      [ "interactive session report"; "profile delta"; "Mem Transfer";
        "transfers:" ];
  if available then begin
    let json = Filename.temp_file "openarc_session" ".json" in
    let code, _ =
      run_cmd
        (Fmt.str "session bench:jacobi --outputs a,b,resid --json %s"
           (Filename.quote json))
    in
    Alcotest.(check int) "session --json: exit 0" 0 code;
    let doc = read_file json in
    Sys.remove json;
    let v = Json_check.parse doc in
    Alcotest.(check (option string)) "session schema"
      (Some "openarc.obs.session")
      (Option.map Json_check.str_exn (Json_check.member "schema" v));
    let records =
      Json_check.arr_exn (Option.get (Json_check.member "records" v))
    in
    Alcotest.(check bool) "session records present" true (records <> []);
    (* byte-reproducible across processes: two invocations, same bytes *)
    let json2 = Filename.temp_file "openarc_session" ".json" in
    let _ =
      run_cmd
        (Fmt.str "session bench:jacobi --outputs a,b,resid --json %s"
           (Filename.quote json2))
    in
    Alcotest.(check string) "session json byte-reproducible" doc
      (read_file json2);
    Sys.remove json2
  end

let test_analyze () =
  check_cmd "analyze" "analyze bench:bfs --devices 4"
    ~expect:
      [ "shard imbalance analysis (4 device(s), schedule block)";
        "main_kernel0"; "switch"; "cyclic"; "program predicted:" ];
  if available then begin
    (* --json emits the canonical document, byte-reproducible *)
    let code, out = run_cmd "analyze bench:bfs --devices 4 --json" in
    Alcotest.(check int) "analyze --json: exit 0" 0 code;
    let v = Json_check.parse out in
    Alcotest.(check (option string)) "json schema"
      (Some "openarc.obs.imbalance")
      (Option.map Json_check.str_exn (Json_check.member "schema" v));
    Alcotest.(check (option string)) "BFS recommended cyclic"
      (Some "cyclic")
      (Option.map Json_check.str_exn (Json_check.member "recommended" v));
    Alcotest.(check bool) "per-kernel verdicts present" true
      (Json_check.arr_exn (Option.get (Json_check.member "kernels" v))
      <> []);
    let _, out2 = run_cmd "analyze bench:bfs --devices 4 --json" in
    Alcotest.(check string) "analyze json byte-reproducible" out out2;
    (* --out writes the same document next to the text report *)
    let f = Filename.temp_file "openarc_analyze" ".json" in
    let code, _ =
      run_cmd
        (Fmt.str "analyze bench:bfs --devices 4 --out %s"
           (Filename.quote f))
    in
    Alcotest.(check int) "analyze --out: exit 0" 0 code;
    Alcotest.(check string) "--out matches --json" out (read_file f);
    Sys.remove f;
    (* a single device is malformed input for the analyzer *)
    let code, out = run_cmd "analyze bench:bfs --devices 1" in
    Alcotest.(check int) "--devices 1: exit 2" 2 code;
    Alcotest.(check bool) "--devices 1: names the fix" true
      (contains ~needle:"--devices >= 2" out);
    (* a uniform benchmark run under cyclic is told to keep it *)
    let code, out =
      run_cmd "analyze bench:jacobi --devices 4 --schedule cyclic"
    in
    Alcotest.(check int) "cyclic analyze: exit 0" 0 code;
    Alcotest.(check bool) "uniform kernel keeps its schedule" true
      (contains ~needle:"keep" out)
  end

let test_fault_matrix () =
  check_cmd "fault-matrix"
    "fault-matrix --benches jacobi --kinds xfer-fail,bitflip"
    ~expect:[ "[OK]"; "4/4 cell(s) recovered verified-correct" ];
  if available then begin
    let code, _ = run_cmd "fault-matrix --benches nosuchbenchmark" in
    Alcotest.(check int) "unknown bench: exit 2" 2 code;
    let code, _ = run_cmd "fault-matrix --benches jacobi --kinds frobnicate" in
    Alcotest.(check int) "unknown kind: exit 2" 2 code
  end

let tests =
  [ Alcotest.test_case "benchmarks" `Quick test_benchmarks;
    Alcotest.test_case "compile" `Quick test_compile;
    Alcotest.test_case "run" `Quick test_run;
    Alcotest.test_case "verify" `Quick test_verify;
    Alcotest.test_case "verify symbolic" `Quick test_verify_symbolic;
    Alcotest.test_case "unknown flag" `Quick test_unknown_flag;
    Alcotest.test_case "optimize" `Slow test_optimize;
    Alcotest.test_case "saturate" `Slow test_saturate;
    Alcotest.test_case "saturate errors" `Quick test_saturate_errors;
    Alcotest.test_case "multi-device" `Quick test_multi_device;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "profile" `Quick test_profile;
    Alcotest.test_case "verify trace" `Quick test_verify_trace;
    Alcotest.test_case "fault matrix trace" `Quick test_fault_matrix_trace;
    Alcotest.test_case "lint" `Quick test_lint;
    Alcotest.test_case "device faults" `Quick test_device_faults;
    Alcotest.test_case "diff profile" `Quick test_diff_profile;
    Alcotest.test_case "analyze" `Quick test_analyze;
    Alcotest.test_case "session" `Slow test_session;
    Alcotest.test_case "fault matrix" `Quick test_fault_matrix;
    Alcotest.test_case "version" `Quick test_version;
    Alcotest.test_case "error handling" `Quick test_error_handling ]
