(* Reference (sequential) interpreter semantics. *)

open Minic

let run src = Accrt.Eval.run_reference (Parser.parse_string src)

let scalar ctx name =
  Accrt.Value.to_float (Accrt.Value.get_scalar ctx.Accrt.Eval.env name)

let int_scalar ctx name =
  Accrt.Value.to_int (Accrt.Value.get_scalar ctx.Accrt.Eval.env name)

let arr ctx name i =
  Gpusim.Buf.get_float (Accrt.Value.array_buf ctx.Accrt.Eval.env name) i

let check_scalar src name expected =
  let ctx = run ("int main() { " ^ src ^ " return 0; }") in
  Alcotest.(check (float 1e-12)) name expected (scalar ctx name)

let test_arithmetic () =
  check_scalar "float x = 1.5 + 2.0 * 3.0;" "x" 7.5;
  check_scalar "int x = 7 / 2;" "x" 3.0;
  check_scalar "int x = 7 % 3;" "x" 1.0;
  check_scalar "float x = float(7) / 2.0;" "x" 3.5;
  check_scalar "int x = (3 < 4) + (4 <= 4) + (5 > 6);" "x" 2.0;
  check_scalar "int x = 1 == 1 ? 10 : 20;" "x" 10.0;
  check_scalar "float x = 0.0 - 2.5;" "x" (-2.5);
  check_scalar "int x = !0 + !5;" "x" 1.0

let test_short_circuit () =
  (* the right operand of && must not be evaluated when the left is false:
     an out-of-bounds access would raise otherwise *)
  check_scalar "float a[2]; int i = 5; int ok = (i < 2) && (a[i] > 0.0);"
    "ok" 0.0;
  check_scalar "float a[2]; int i = 5; int ok = (i >= 2) || (a[i] > 0.0);"
    "ok" 1.0

let test_control_flow () =
  check_scalar
    "int s = 0; for (int i = 0; i < 5; i++) { if (i == 2) { continue; } if \
     (i == 4) { break; } s = s + i; }"
    "s" 4.0 (* 0 + 1 + 3 *);
  check_scalar "int i = 0; int n = 0; while (i < 10) { i = i + 3; n++; }"
    "n" 4.0;
  check_scalar
    "int x = 0; { int y = 5; x = y; }" "x" 5.0

let test_arrays_and_pointers () =
  let ctx =
    run
      "int main() { float a[4]; float b[4]; float *p; for (int i = 0; i < \
       4; i++) { a[i] = float(i); b[i] = 10.0; } p = a; p[1] = 42.0; p = b; \
       p[1] = 7.0; return 0; }"
  in
  Alcotest.(check (float 0.)) "write via p to a" 42.0 (arr ctx "a" 1);
  Alcotest.(check (float 0.)) "write via p to b" 7.0 (arr ctx "b" 1);
  Alcotest.(check string) "root tracks rebinding" "b"
    (Accrt.Value.root_of ctx.Accrt.Eval.env "p")

let test_functions () =
  let ctx =
    run
      "float square(float x) { return x * x; }\n\
       float sum(float a[], int n) { float s = 0.0; for (int i = 0; i < n; \
       i++) { s = s + a[i]; } return s; }\n\
       void fill(float a[], int n, float v) { for (int i = 0; i < n; i++) \
       { a[i] = v; } }\n\
       int main() { float a[3]; fill(a, 3, 2.0); float t = sum(a, 3); \
       float q = square(t); return 0; }"
  in
  Alcotest.(check (float 0.)) "by-ref fill + sum" 6.0 (scalar ctx "t");
  Alcotest.(check (float 0.)) "nested call" 36.0 (scalar ctx "q")

let test_builtins () =
  check_scalar "float x = sqrt(16.0);" "x" 4.0;
  check_scalar "float x = fabs(0.0 - 3.5);" "x" 3.5;
  check_scalar "float x = pow(2.0, 10.0);" "x" 1024.0;
  check_scalar "float x = min(3.0, 1.0) + max(3.0, 1.0);" "x" 4.0;
  check_scalar "int x = abs(0 - 7);" "x" 7.0;
  check_scalar "float x = floor(2.7) + ceil(2.2);" "x" 5.0;
  check_scalar "float x = exp(0.0) + log(1.0);" "x" 1.0

let test_globals () =
  let ctx =
    run
      "float g[4];\nint counter = 10;\nint main() { g[0] = 3.0; counter = \
       counter + 1; return 0; }"
  in
  Alcotest.(check (float 0.)) "global array" 3.0 (arr ctx "g" 0);
  Alcotest.(check int) "global scalar" 11 (int_scalar ctx "counter")

let test_directives_transparent () =
  (* Sequential reference execution ignores directives but runs bodies. *)
  let ctx =
    run
      "int main() { float a[4]; float s = 0.0;\n#pragma acc data \
       copyin(a)\n{\n#pragma acc kernels loop reduction(+:s)\nfor (int i = \
       0; i < 4; i++) { a[i] = 1.0; s = s + a[i]; }\n}\n#pragma acc update \
       host(a)\nreturn 0; }"
  in
  Alcotest.(check (float 0.)) "body ran" 4.0 (scalar ctx "s")

let test_runtime_errors () =
  let expect_err src =
    try
      ignore (run src);
      Alcotest.fail "expected runtime error"
    with Accrt.Value.Runtime_error _ -> ()
  in
  expect_err "int main() { float a[2]; a[5] = 1.0; return 0; }";
  expect_err "int main() { float a[2]; a[0 - 1] = 1.0; return 0; }";
  expect_err "int main() { int x = 1 / 0; return 0; }";
  expect_err "int main() { float a[]; a[0] = 1.0; return 0; }"

let test_op_counting () =
  let c1 = run "int main() { return 0; }" in
  let c2 =
    run "int main() { int s = 0; for (int i = 0; i < 100; i++) { s = s + i; \
         } return 0; }"
  in
  Alcotest.(check bool) "ops grow with work" true
    (c2.Accrt.Eval.ops > c1.Accrt.Eval.ops + 300)

(* Pin the Int/Flt promotion rules of [Eval.arith] by constructor, not
   just by value: arithmetic keeps ints integral and promotes on any
   float operand; comparison and logical results are always *Int* 0/1
   (and, with the allocation-free fast path, physically the two shared
   scalars — so neither engine ever boxes a boolean). *)
let test_promotion_rules () =
  let open Minic.Ast in
  let a = Accrt.Eval.arith in
  let check name expected got =
    Alcotest.(check bool) name true (expected = got)
  in
  check "int + int stays int" (Accrt.Value.Int 7)
    (a Add (Accrt.Value.Int 3) (Accrt.Value.Int 4));
  check "int + float promotes" (Accrt.Value.Flt 7.5)
    (a Add (Accrt.Value.Int 3) (Accrt.Value.Flt 4.5));
  check "float * int promotes" (Accrt.Value.Flt 8.0)
    (a Mul (Accrt.Value.Flt 2.0) (Accrt.Value.Int 4));
  check "int / int truncates" (Accrt.Value.Int 3)
    (a Div (Accrt.Value.Int 7) (Accrt.Value.Int 2));
  check "float / int is float division" (Accrt.Value.Flt 3.5)
    (a Div (Accrt.Value.Flt 7.0) (Accrt.Value.Int 2));
  check "int < int is Int 1" (Accrt.Value.Int 1)
    (a Lt (Accrt.Value.Int 3) (Accrt.Value.Int 4));
  check "float < float is Int 1" (Accrt.Value.Int 1)
    (a Lt (Accrt.Value.Flt 3.0) (Accrt.Value.Flt 4.0));
  check "mixed == compares as float, yields Int" (Accrt.Value.Int 1)
    (a Eq (Accrt.Value.Int 3) (Accrt.Value.Flt 3.0));
  check "false comparison is Int 0" (Accrt.Value.Int 0)
    (a Gt (Accrt.Value.Flt 1.0) (Accrt.Value.Flt 2.0));
  check "logical and on floats is Int" (Accrt.Value.Int 1)
    (a Land (Accrt.Value.Flt 0.5) (Accrt.Value.Flt 2.0));
  check "logical or on ints is Int" (Accrt.Value.Int 0)
    (a Lor (Accrt.Value.Int 0) (Accrt.Value.Int 0));
  (* the fast path: boolean results are the two shared scalars *)
  Alcotest.(check bool) "true results share one scalar" true
    (a Lt (Accrt.Value.Int 3) (Accrt.Value.Int 4)
    == a Ge (Accrt.Value.Flt 4.0) (Accrt.Value.Flt 3.0));
  Alcotest.(check bool) "false results share one scalar" true
    (a Lt (Accrt.Value.Int 4) (Accrt.Value.Int 3)
    == a Ge (Accrt.Value.Flt 3.0) (Accrt.Value.Flt 4.0))

let tests =
  [ Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "promotion rules" `Quick test_promotion_rules;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
    Alcotest.test_case "functions" `Quick test_functions;
    Alcotest.test_case "builtins" `Quick test_builtins;
    Alcotest.test_case "globals" `Quick test_globals;
    Alcotest.test_case "directives transparent" `Quick
      test_directives_transparent;
    Alcotest.test_case "runtime errors" `Quick test_runtime_errors;
    Alcotest.test_case "op counting" `Quick test_op_counting ]
