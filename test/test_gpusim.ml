(* GPU-simulator tests: buffers, cost model, device memory, streams,
   metrics; QCheck properties on buffer comparison. *)

let feq = Alcotest.float 1e-9

(* ------------------------------ Buf ------------------------------ *)

let test_buf_basics () =
  let b = Gpusim.Buf.create_float 4 in
  Gpusim.Buf.set_float b 0 1.5;
  Alcotest.(check (float 0.)) "get" 1.5 (Gpusim.Buf.get_float b 0);
  Alcotest.(check int) "bytes float" 32 (Gpusim.Buf.bytes b);
  let i = Gpusim.Buf.create_int 4 in
  Alcotest.(check int) "bytes int" 16 (Gpusim.Buf.bytes i);
  Gpusim.Buf.set_int i 2 7;
  Alcotest.(check int) "int get" 7 (Gpusim.Buf.get_int i 2);
  (* int<->float views *)
  Alcotest.(check (float 0.)) "int as float" 7.0 (Gpusim.Buf.get_float i 2)

let test_buf_blit () =
  let src = Gpusim.Buf.Fbuf [| 1.; 2.; 3.; 4. |] in
  let dst = Gpusim.Buf.create_float 4 in
  Gpusim.Buf.blit ~src ~dst;
  Alcotest.(check (float 0.)) "blit all" 3. (Gpusim.Buf.get_float dst 2);
  let dst2 = Gpusim.Buf.create_float 4 in
  Gpusim.Buf.blit_range ~src ~dst:dst2 ~lo:1 ~len:2;
  Alcotest.(check (float 0.)) "range inside" 2. (Gpusim.Buf.get_float dst2 1);
  Alcotest.(check (float 0.)) "range outside" 0. (Gpusim.Buf.get_float dst2 3);
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Buf.blit: shape mismatch")
    (fun () -> Gpusim.Buf.blit ~src ~dst:(Gpusim.Buf.create_float 3))

let test_buf_compare () =
  let reference = Gpusim.Buf.Fbuf [| 1.0; 2.0; 3.0 |] in
  let same = Gpusim.Buf.Fbuf [| 1.0; 2.0 +. 1e-12; 3.0 |] in
  let off = Gpusim.Buf.Fbuf [| 1.0; 2.5; 3.0 |] in
  let _, n1 = Gpusim.Buf.compare ~margin:1e-9 ~reference same in
  Alcotest.(check int) "within margin" 0 n1;
  let idx, n2 = Gpusim.Buf.compare ~margin:1e-9 ~reference off in
  Alcotest.(check int) "one mismatch" 1 n2;
  Alcotest.(check (list int)) "index" [ 1 ] idx;
  (* minValueToCheck skips small reference entries *)
  let tiny_ref = Gpusim.Buf.Fbuf [| 1e-40; 5.0 |] in
  let tiny_off = Gpusim.Buf.Fbuf [| 1.0; 5.0 |] in
  let _, n3 =
    Gpusim.Buf.compare ~min_value:1e-32 ~margin:1e-9 ~reference:tiny_ref
      tiny_off
  in
  Alcotest.(check int) "minValueToCheck skips" 0 n3

let buf_compare_reflexive =
  QCheck.Test.make ~count:200 ~name:"Buf.compare x x = 0"
    QCheck.(array_of_size (QCheck.Gen.int_range 1 20) (float_range (-1e6) 1e6))
    (fun a ->
      let b = Gpusim.Buf.Fbuf a in
      let _, n = Gpusim.Buf.compare ~margin:0.0 ~reference:b (Gpusim.Buf.copy b) in
      n = 0)

let buf_max_diff_symmetric =
  QCheck.Test.make ~count:200 ~name:"max_abs_diff symmetric"
    QCheck.(pair
              (array_of_size (QCheck.Gen.return 8) (float_range (-100.) 100.))
              (array_of_size (QCheck.Gen.return 8) (float_range (-100.) 100.)))
    (fun (a, b) ->
      let ba = Gpusim.Buf.Fbuf a and bb = Gpusim.Buf.Fbuf b in
      Float.equal (Gpusim.Buf.max_abs_diff ba bb)
        (Gpusim.Buf.max_abs_diff bb ba))

(* --------------------------- cost model --------------------------- *)

let test_costmodel () =
  let cm = Gpusim.Costmodel.default in
  let t_small = Gpusim.Costmodel.transfer_time cm ~bytes:8 ~noise:0.0 in
  let t_big = Gpusim.Costmodel.transfer_time cm ~bytes:8_000_000 ~noise:0.0 in
  Alcotest.(check bool) "latency floor" true (t_small >= cm.pcie_latency);
  Alcotest.(check bool) "bandwidth term" true (t_big > 100. *. t_small);
  (* parallel width caps speedup *)
  let t1 = Gpusim.Costmodel.kernel_time cm ~iterations:1 ~ops_per_iter:100 in
  let t512 =
    Gpusim.Costmodel.kernel_time cm ~iterations:512 ~ops_per_iter:100
  in
  let t1024 =
    Gpusim.Costmodel.kernel_time cm ~iterations:1024 ~ops_per_iter:100
  in
  Alcotest.check feq "512 lanes hide iterations" t1 t512;
  Alcotest.(check bool) "beyond width serializes" true (t1024 > t512);
  Alcotest.(check bool) "jitter bounded" true
    (let tj = Gpusim.Costmodel.transfer_time cm ~bytes:8 ~noise:1.0 in
     tj <= t_small *. (1. +. cm.pcie_jitter) +. 1e-15)

(* ----------------------------- device ----------------------------- *)

let test_device_memory () =
  let dev = Gpusim.Device.create () in
  let host = Gpusim.Buf.Fbuf [| 1.; 2.; 3. |] in
  Gpusim.Device.alloc dev "a" ~like:host;
  Alcotest.(check bool) "allocated" true (Gpusim.Device.is_allocated dev "a");
  Gpusim.Device.upload dev "a" ~host ();
  let back = Gpusim.Buf.create_float 3 in
  Gpusim.Device.download dev "a" ~host:back ();
  Alcotest.(check (float 0.)) "round trip" 2. (Gpusim.Buf.get_float back 1);
  Alcotest.check_raises "double alloc"
    (Gpusim.Device.Device_error "device buffer 'a' already allocated")
    (fun () -> Gpusim.Device.alloc dev "a" ~like:host);
  Gpusim.Device.free dev "a";
  Alcotest.(check bool) "freed" false (Gpusim.Device.is_allocated dev "a");
  Alcotest.check_raises "use after free"
    (Gpusim.Device.Device_error "device buffer 'a' is not allocated")
    (fun () -> ignore (Gpusim.Device.buffer dev "a"))

let test_device_accounting () =
  let dev = Gpusim.Device.create () in
  let m = dev.Gpusim.Device.metrics in
  let host = Gpusim.Buf.create_float 1000 in
  Gpusim.Device.alloc dev "a" ~like:host;
  Gpusim.Device.upload dev "a" ~host ();
  Gpusim.Device.download dev "a" ~host ();
  Alcotest.(check int) "h2d bytes" 8000 m.Gpusim.Metrics.bytes_h2d;
  Alcotest.(check int) "d2h bytes" 8000 m.Gpusim.Metrics.bytes_d2h;
  Alcotest.(check int) "transfer count" 1 m.Gpusim.Metrics.transfers_h2d;
  Alcotest.(check bool) "transfer time charged" true
    (Gpusim.Metrics.time_of m Gpusim.Metrics.Mem_transfer > 0.);
  (* subarray transfer moves fewer bytes *)
  Gpusim.Device.upload dev "a" ~host ~range:(0, 10) ();
  Alcotest.(check int) "partial bytes" (8000 + 80) m.Gpusim.Metrics.bytes_h2d

let test_device_streams () =
  let dev = Gpusim.Device.create () in
  let m = dev.Gpusim.Device.metrics in
  let host = Gpusim.Buf.create_float 100000 in
  Gpusim.Device.alloc dev "a" ~like:host;
  (* async upload: host barely charged until the wait *)
  Gpusim.Device.upload dev "a" ~host ~async:1 ();
  let before_wait = Gpusim.Metrics.time_of m Gpusim.Metrics.Mem_transfer in
  Gpusim.Device.wait dev (Some 1);
  let waited = Gpusim.Metrics.time_of m Gpusim.Metrics.Async_wait in
  Alcotest.(check bool) "submit is cheap" true (before_wait < 2e-6);
  Alcotest.(check bool) "wait pays the transfer" true (waited > 50e-6);
  (* waiting again is free *)
  Gpusim.Device.wait dev (Some 1);
  Alcotest.check feq "idempotent wait" waited
    (Gpusim.Metrics.time_of m Gpusim.Metrics.Async_wait)

(* --------------------------- chrome trace -------------------------- *)

(* A small traced device workload touching the host track (tid 0) and an
   async stream track (tid 2 = stream 1 + 1). *)
let traced_device () =
  let dev = Gpusim.Device.create ~trace:true () in
  let host = Gpusim.Buf.create_float 1000 in
  Gpusim.Device.alloc dev "a" ~like:host;
  Gpusim.Device.upload dev "a" ~host ();
  Gpusim.Device.upload dev "a" ~host ~async:1 ();
  Gpusim.Device.wait dev (Some 1);
  Gpusim.Device.download dev "a" ~host ();
  dev

let test_chrome_json_parses () =
  let dev = traced_device () in
  let json = Gpusim.Timeline.to_chrome_json dev.Gpusim.Device.timeline in
  let v = Json_check.parse json in
  let events = Json_check.arr_exn v in
  Alcotest.(check bool) "several events" true (List.length events >= 4);
  List.iter
    (fun e ->
      Alcotest.(check (option string))
        "complete-event phase" (Some "X")
        (Option.map Json_check.str_exn (Json_check.member "ph" e));
      List.iter
        (fun field ->
          Alcotest.(check bool) (field ^ " present") true
            (Json_check.member field e <> None))
        [ "name"; "cat"; "ts"; "dur"; "pid"; "tid" ])
    events

let test_chrome_tids () =
  let dev = traced_device () in
  let tl = dev.Gpusim.Device.timeline in
  let events = Json_check.arr_exn (Json_check.parse
                                     (Gpusim.Timeline.to_chrome_json tl)) in
  let tid_of e = int_of_float (Json_check.num_exn
                                 (Option.get (Json_check.member "tid" e))) in
  let tids = List.sort_uniq compare (List.map tid_of events) in
  (* host track is tid 0; stream q maps stably to tid q+1 *)
  Alcotest.(check bool) "host track present" true (List.mem 0 tids);
  Alcotest.(check bool) "stream 1 is tid 2" true (List.mem 2 tids);
  Alcotest.(check bool) "no tid 1 without stream 0" true
    (List.for_all
       (fun ev ->
         match ev.Gpusim.Timeline.ev_stream with
         | None -> true
         | Some q -> List.mem (q + 1) tids)
       (Gpusim.Timeline.events tl));
  (* per-tid (not global) start times are monotone: async submissions may
     interleave across tracks, but each track is ordered *)
  let ts_of e = Json_check.num_exn (Option.get (Json_check.member "ts" e)) in
  List.iter
    (fun tid ->
      let track = List.filter (fun e -> tid_of e = tid) events in
      let rec mono = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool)
              (Fmt.str "tid %d monotone" tid)
              true
              (ts_of a <= ts_of b);
            mono rest
        | _ -> ()
      in
      mono track)
    tids

let test_chrome_process_name () =
  let m = Gpusim.Timeline.chrome_process_name ~pid:3 "jacobi/bitflip/retry" in
  let v = Json_check.parse m in
  Alcotest.(check (option string)) "metadata phase" (Some "M")
    (Option.map Json_check.str_exn (Json_check.member "ph" v));
  Alcotest.(check (option string)) "name" (Some "process_name")
    (Option.map Json_check.str_exn (Json_check.member "name" v))

let test_metrics_pp_golden () =
  let m = Gpusim.Metrics.create () in
  Gpusim.Metrics.charge m Gpusim.Metrics.Cpu_time 1.0;
  Gpusim.Metrics.charge m Gpusim.Metrics.Mem_transfer 0.25;
  m.Gpusim.Metrics.bytes_h2d <- 1024;
  m.Gpusim.Metrics.transfers_h2d <- 2;
  m.Gpusim.Metrics.kernel_launches <- 3;
  let expected =
    "total 1.250000 s (1024 B h2d in 2 xfers, 0 B d2h in 0 xfers, \
     3 launches, 0 checks)\n\
     \  CPU Time       1.000000 s\n\
     \  Mem Transfer   0.250000 s"
  in
  Alcotest.(check string) "pp golden" expected
    (Fmt.str "%a" Gpusim.Metrics.pp m)

let test_metrics_charge_hook () =
  let m = Gpusim.Metrics.create () in
  let seen = ref [] in
  Gpusim.Metrics.set_on_charge m (fun c dt ->
      seen := (Gpusim.Metrics.category_name c, dt) :: !seen);
  Gpusim.Metrics.charge m Gpusim.Metrics.Gpu_alloc 0.5;
  Gpusim.Metrics.charge m Gpusim.Metrics.Cpu_time 0.25;
  Alcotest.(check (list (pair string (float 0.))))
    "hook sees every charge in order"
    [ ("GPU Mem Alloc", 0.5); ("CPU Time", 0.25) ]
    (List.rev !seen)

let test_metrics () =
  let m = Gpusim.Metrics.create () in
  Gpusim.Metrics.charge m Gpusim.Metrics.Cpu_time 1.0;
  Gpusim.Metrics.charge m Gpusim.Metrics.Cpu_time 0.5;
  Gpusim.Metrics.charge m Gpusim.Metrics.Gpu_alloc 0.25;
  Alcotest.check feq "accumulates" 1.5
    (Gpusim.Metrics.time_of m Gpusim.Metrics.Cpu_time);
  Alcotest.check feq "total" 1.75 (Gpusim.Metrics.total_time m);
  Alcotest.check feq "host clock advances" 1.75 m.Gpusim.Metrics.host_clock;
  Gpusim.Metrics.reset m;
  Alcotest.check feq "reset" 0.0 (Gpusim.Metrics.total_time m)

(* --------------------------- Device_set --------------------------- *)

(* Block and cyclic splits must partition the iteration space: every
   ordinal has exactly one owner in range, per-part ordinal counts match
   shard_size, and shard sizes sum back to the total. *)
let split_partitions =
  let open QCheck in
  Test.make ~count:300 ~name:"Device_set split partitions the space"
    (triple (int_range 1 100) (int_range 1 8) bool)
    (fun (total, parts, cyclic) ->
      let schedule =
        if cyclic then Gpusim.Device_set.Cyclic else Gpusim.Device_set.Block
      in
      let counts = Array.make parts 0 in
      for i = 0 to total - 1 do
        let o = Gpusim.Device_set.owner schedule ~parts ~total i in
        if o < 0 || o >= parts then
          Test.fail_reportf "owner %d out of range for i=%d" o i;
        counts.(o) <- counts.(o) + 1
      done;
      let sum = ref 0 in
      for p = 0 to parts - 1 do
        let sz = Gpusim.Device_set.shard_size schedule ~parts ~total p in
        if sz <> counts.(p) then
          Test.fail_reportf "shard_size %d <> owned count %d for part %d" sz
            counts.(p) p;
        sum := !sum + sz
      done;
      !sum = total)

let test_device_set_schedules () =
  let owner s i = Gpusim.Device_set.owner s ~parts:3 ~total:10 i in
  (* block: contiguous ceil(10/3)=4-wide chunks *)
  Alcotest.(check (list int)) "block owners"
    [ 0; 0; 0; 0; 1; 1; 1; 1; 2; 2 ]
    (List.init 10 (owner Gpusim.Device_set.Block));
  (* cyclic: round-robin by ordinal *)
  Alcotest.(check (list int)) "cyclic owners"
    [ 0; 1; 2; 0; 1; 2; 0; 1; 2; 0 ]
    (List.init 10 (owner Gpusim.Device_set.Cyclic));
  (* one participant owns everything regardless of schedule *)
  Alcotest.(check int) "solo owner" 0
    (Gpusim.Device_set.owner Gpusim.Device_set.Cyclic ~parts:1 ~total:10 7);
  Alcotest.(check int) "solo shard" 10
    (Gpusim.Device_set.shard_size Gpusim.Device_set.Block ~parts:1 ~total:10 0);
  (* schedule names round-trip; unknown names are rejected *)
  List.iter
    (fun s ->
      match
        Gpusim.Device_set.schedule_of_string (Gpusim.Device_set.schedule_name s)
      with
      | Ok s' -> Alcotest.(check bool) "schedule roundtrip" true (s = s')
      | Error e -> Alcotest.failf "schedule rejected: %s" e)
    [ Gpusim.Device_set.Block; Gpusim.Device_set.Cyclic ];
  (match Gpusim.Device_set.schedule_of_string "diagonal" with
  | Ok _ -> Alcotest.fail "bogus schedule accepted"
  | Error _ -> ())

let test_device_set_members () =
  let set = Gpusim.Device_set.create ~seed:5 3 in
  Alcotest.(check int) "size" 3 (Gpusim.Device_set.size set);
  Alcotest.(check int) "all alive" 3 (Gpusim.Device_set.num_alive set);
  Alcotest.(check (list int)) "alive ids" [ 0; 1; 2 ]
    (Gpusim.Device_set.alive_ids set);
  Alcotest.(check bool) "primary is device 0" true
    (Gpusim.Device_set.primary set == Gpusim.Device_set.device set 0);
  (* member ids are their ordinals *)
  for i = 0 to 2 do
    Alcotest.(check int) "member id" i
      (Gpusim.Device_set.device set i).Gpusim.Device.id
  done;
  (* losing the primary: the survivors carry on, first_alive skips it *)
  let p =
    Gpusim.Fault_plan.create ~seed:5
      [ Gpusim.Fault_plan.mk_rule Gpusim.Fault_plan.Device_lost ]
  in
  let set =
    Gpusim.Device_set.create ~seed:5 ~plan:p 2
  in
  let d0 = Gpusim.Device_set.device set 0 in
  (try Gpusim.Device.begin_launch d0 ~label:"k" with
  | Gpusim.Device.Device_fault _ -> ());
  Alcotest.(check bool) "primary lost" false (Gpusim.Device.alive d0);
  Alcotest.(check int) "one alive" 1 (Gpusim.Device_set.num_alive set);
  Alcotest.(check (list int)) "survivor id" [ 1 ]
    (Gpusim.Device_set.alive_ids set);
  (match Gpusim.Device_set.first_alive set with
  | Some d -> Alcotest.(check int) "first alive" 1 d.Gpusim.Device.id
  | None -> Alcotest.fail "survivor expected");
  Alcotest.(check bool) "not all lost" false (Gpusim.Device_set.all_lost set);
  (* the injected loss folds back into the base plan for reporting *)
  Gpusim.Device_set.flush_events set;
  Alcotest.(check bool) "base plan latched lost" true p.Gpusim.Fault_plan.lost;
  Alcotest.(check int) "base plan sees the event" 1 (Gpusim.Fault_plan.injected p)

let test_device_set_of_device () =
  let dev = Gpusim.Device.create () in
  let set = Gpusim.Device_set.of_device dev in
  Alcotest.(check int) "one member" 1 (Gpusim.Device_set.size set);
  Alcotest.(check bool) "wraps the same device" true
    (Gpusim.Device_set.primary set == dev)

let tests =
  [ Alcotest.test_case "buf basics" `Quick test_buf_basics;
    Alcotest.test_case "buf blit" `Quick test_buf_blit;
    Alcotest.test_case "buf compare" `Quick test_buf_compare;
    QCheck_alcotest.to_alcotest buf_compare_reflexive;
    QCheck_alcotest.to_alcotest buf_max_diff_symmetric;
    Alcotest.test_case "cost model" `Quick test_costmodel;
    Alcotest.test_case "device memory" `Quick test_device_memory;
    Alcotest.test_case "device accounting" `Quick test_device_accounting;
    Alcotest.test_case "device streams" `Quick test_device_streams;
    Alcotest.test_case "chrome json parses" `Quick test_chrome_json_parses;
    Alcotest.test_case "chrome tids" `Quick test_chrome_tids;
    Alcotest.test_case "chrome process name" `Quick test_chrome_process_name;
    Alcotest.test_case "metrics pp golden" `Quick test_metrics_pp_golden;
    Alcotest.test_case "metrics charge hook" `Quick test_metrics_charge_hook;
    Alcotest.test_case "metrics" `Quick test_metrics;
    QCheck_alcotest.to_alcotest split_partitions;
    Alcotest.test_case "device set schedules" `Quick test_device_set_schedules;
    Alcotest.test_case "device set members" `Quick test_device_set_members;
    Alcotest.test_case "device set of_device" `Quick test_device_set_of_device ]
