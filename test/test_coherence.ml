(* Coherence state machine: transitions of check_read/check_write,
   set_status on transfers, reset_status, report kinds; a QCheck invariant
   over random event sequences. *)

open Codegen.Tprog

let site label = Codegen.Tprog.mk_site label

let kinds t = List.map (fun r -> r.Accrt.Coherence.r_kind) (Accrt.Coherence.reports t)

let test_clean_sequence () =
  let t = Accrt.Coherence.create () in
  (* host writes v, uploads, kernel reads+writes, downloads, host reads *)
  Accrt.Coherence.check_write t "v" Cpu;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up");
  Accrt.Coherence.check_read t "v" Gpu;
  Accrt.Coherence.check_write t "v" Gpu;
  Accrt.Coherence.on_transfer t "v" D2H ~site:(site "down");
  Accrt.Coherence.check_read t "v" Cpu;
  Alcotest.(check int) "no reports" 0 (List.length (kinds t))

let test_missing () =
  let t = Accrt.Coherence.create () in
  Accrt.Coherence.check_write t "v" Gpu;
  (* kernel wrote v; host reads without a download *)
  Accrt.Coherence.check_read t "v" Cpu;
  (match kinds t with
  | [ Accrt.Coherence.Missing ] -> ()
  | _ -> Alcotest.fail "expected Missing");
  (* after the (reported) read the state is reset to avoid cascades *)
  Accrt.Coherence.check_read t "v" Cpu;
  Alcotest.(check int) "no duplicate" 1 (List.length (kinds t))

let test_redundant () =
  let t = Accrt.Coherence.create () in
  Accrt.Coherence.check_write t "v" Cpu;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up1");
  (* nothing staled the GPU copy: second upload is redundant *)
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up2");
  match Accrt.Coherence.reports t with
  | [ r ] ->
      Alcotest.(check bool) "kind" true
        (r.Accrt.Coherence.r_kind = Accrt.Coherence.Redundant);
      (match r.Accrt.Coherence.r_site with
      | Some s -> Alcotest.(check string) "site" "up2" s.site_label
      | None -> Alcotest.fail "site attached")
  | _ -> Alcotest.fail "expected one Redundant"

let test_incorrect () =
  let t = Accrt.Coherence.create () in
  Accrt.Coherence.check_write t "v" Cpu;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up");
  Accrt.Coherence.check_write t "v" Gpu;
  (* GPU now newer; uploading the stale host copy is incorrect (and also
     redundant is NOT reported: target was stale) *)
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "bad");
  match kinds t with
  | [ Accrt.Coherence.Incorrect ] -> ()
  | _ -> Alcotest.fail "expected Incorrect"

let test_may_redundant_via_reset () =
  let t = Accrt.Coherence.create () in
  Accrt.Coherence.check_write t "v" Gpu;
  (* compiler: CPU copy is may-dead after this kernel *)
  Accrt.Coherence.reset_status t "v" Cpu May_stale;
  Accrt.Coherence.on_transfer t "v" D2H ~site:(site "down");
  (match kinds t with
  | [ Accrt.Coherence.May_redundant ] -> ()
  | _ -> Alcotest.fail "expected May_redundant");
  let t2 = Accrt.Coherence.create () in
  Accrt.Coherence.check_write t2 "v" Gpu;
  Accrt.Coherence.reset_status t2 "v" Cpu Not_stale;
  Accrt.Coherence.on_transfer t2 "v" D2H ~site:(site "down");
  match kinds t2 with
  | [ Accrt.Coherence.Redundant ] -> ()
  | _ -> Alcotest.fail "expected Redundant (must-dead)"

let test_may_missing_on_write () =
  let t = Accrt.Coherence.create () in
  Accrt.Coherence.check_write t "v" Gpu;
  (* host writes the stale copy: only may-missing (may fully overwrite) *)
  Accrt.Coherence.check_write t "v" Cpu;
  match kinds t with
  | [ Accrt.Coherence.May_missing ] -> ()
  | _ -> Alcotest.fail "expected May_missing"

let test_free_stales_gpu () =
  let t = Accrt.Coherence.create () in
  Accrt.Coherence.check_write t "v" Cpu;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up1");
  Accrt.Coherence.on_free t "v";
  (* after free+realloc the upload is needed again: no redundant report *)
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up2");
  Alcotest.(check int) "no report" 0 (List.length (kinds t))

let test_loop_context () =
  let t = Accrt.Coherence.create () in
  Accrt.Coherence.enter_loop t "k";
  Accrt.Coherence.next_iteration t;
  Accrt.Coherence.next_iteration t;
  Accrt.Coherence.check_write t "v" Gpu;
  Accrt.Coherence.check_read t "v" Cpu;
  (match Accrt.Coherence.reports t with
  | [ r ] ->
      Alcotest.(check bool) "loop recorded" true
        (r.Accrt.Coherence.r_loops = [ ("k", 2) ])
  | _ -> Alcotest.fail "one report");
  Accrt.Coherence.exit_loop t;
  let msg =
    Fmt.str "%a" Accrt.Coherence.pp_report
      (List.hd (Accrt.Coherence.reports t))
  in
  Alcotest.(check bool) "message mentions loop index" true
    (let needle = "enclosing loop k index = 2" in
     let n = String.length needle and m = String.length msg in
     let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
     go 0)

(* Invariant: after any event sequence, every tracked state is one of the
   three statuses and check_read immediately after check_write on the same
   device never reports. *)
let coherence_invariant =
  QCheck.Test.make ~count:300 ~name:"read-after-local-write never reports"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 20)
           (oneofl
              [ `Cw_cpu; `Cw_gpu; `Cr_cpu; `Cr_gpu; `Up; `Down; `Free;
                `Reset_may; `Reset_not ])))
    (fun events ->
      let t = Accrt.Coherence.create () in
      List.iter
        (function
          | `Cw_cpu -> Accrt.Coherence.check_write t "v" Cpu
          | `Cw_gpu -> Accrt.Coherence.check_write t "v" Gpu
          | `Cr_cpu -> Accrt.Coherence.check_read t "v" Cpu
          | `Cr_gpu -> Accrt.Coherence.check_read t "v" Gpu
          | `Up -> Accrt.Coherence.on_transfer t "v" H2D ~site:(site "u")
          | `Down -> Accrt.Coherence.on_transfer t "v" D2H ~site:(site "d")
          | `Free -> Accrt.Coherence.on_free t "v"
          | `Reset_may -> Accrt.Coherence.reset_status t "v" Cpu May_stale
          | `Reset_not -> Accrt.Coherence.reset_status t "v" Gpu Not_stale)
        events;
      (* local write then local read: must be silent *)
      let before = List.length (Accrt.Coherence.reports t) in
      Accrt.Coherence.check_write t "v" Cpu;
      let mid = List.length (Accrt.Coherence.reports t) in
      Accrt.Coherence.check_read t "v" Cpu;
      ignore before;
      List.length (Accrt.Coherence.reports t) = mid)

(* ---------------------- per-device lattice ------------------------- *)

(* The pessimistic join: [get _ Gpu] is the worst live member's status,
   and a lost member leaves the join. *)
let test_gpu_join () =
  let t = Accrt.Coherence.create ~devices:3 () in
  Accrt.Coherence.check_write t "v" Cpu;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up");
  Alcotest.(check bool) "all fresh after broadcast" true
    (Accrt.Coherence.get t "v" Gpu = Not_stale);
  Accrt.Coherence.set_gpu t "v" 1 May_stale;
  Alcotest.(check bool) "join is may-stale" true
    (Accrt.Coherence.get t "v" Gpu = May_stale);
  Accrt.Coherence.set_gpu t "v" 2 Stale;
  Alcotest.(check bool) "join is stale" true
    (Accrt.Coherence.get t "v" Gpu = Stale);
  (* members leave the join as they drop off the bus *)
  Accrt.Coherence.on_device_lost t 2;
  Alcotest.(check bool) "lost member out of the join" true
    (Accrt.Coherence.get t "v" Gpu = May_stale);
  Accrt.Coherence.on_device_lost t 1;
  Alcotest.(check bool) "only the primary left" true
    (Accrt.Coherence.get t "v" Gpu = Not_stale);
  (* a kernel commit on a subset refreshes it and stales the others *)
  let t2 = Accrt.Coherence.create ~devices:2 () in
  Accrt.Coherence.check_write t2 "v" Cpu;
  Accrt.Coherence.on_transfer t2 "v" H2D ~site:(site "up");
  Accrt.Coherence.note_kernel_write t2 "v" ~devs:[ 0 ];
  Alcotest.(check bool) "writer fresh" true
    (Accrt.Coherence.gpu_status t2 "v" 0 = Not_stale);
  Alcotest.(check bool) "bystander stale" true
    (Accrt.Coherence.gpu_status t2 "v" 1 = Stale);
  Accrt.Coherence.note_gpu_fresh t2 "v" ~devs:[ 1 ];
  Alcotest.(check bool) "peer sync refreshes" true
    (Accrt.Coherence.gpu_status t2 "v" 1 = Not_stale)

(* N = 1 join property: a one-member lattice is the paper's single-device
   automaton — same statuses, same verdicts, for any event sequence. *)
let single_device_join_identity =
  QCheck.Test.make ~count:300
    ~name:"coherence devices:1 == single-device lattice"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 20)
           (oneofl
              [ `Cw_cpu; `Cw_gpu; `Cr_cpu; `Cr_gpu; `Up; `Down; `Free;
                `Reset_may; `Reset_not; `Kwrite; `Gfresh ])))
    (fun events ->
      let t1 = Accrt.Coherence.create ~devices:1 () in
      let t0 = Accrt.Coherence.create () in
      let step t = function
        | `Cw_cpu -> Accrt.Coherence.check_write t "v" Cpu
        | `Cw_gpu -> Accrt.Coherence.check_write t "v" Gpu
        | `Cr_cpu -> Accrt.Coherence.check_read t "v" Cpu
        | `Cr_gpu -> Accrt.Coherence.check_read t "v" Gpu
        | `Up -> Accrt.Coherence.on_transfer t "v" H2D ~site:(site "u")
        | `Down -> Accrt.Coherence.on_transfer t "v" D2H ~site:(site "d")
        | `Free -> Accrt.Coherence.on_free t "v"
        | `Reset_may -> Accrt.Coherence.reset_status t "v" Cpu May_stale
        | `Reset_not -> Accrt.Coherence.reset_status t "v" Gpu Not_stale
        | `Kwrite -> Accrt.Coherence.note_kernel_write t "v" ~devs:[ 0 ]
        | `Gfresh -> Accrt.Coherence.note_gpu_fresh t "v" ~devs:[ 0 ]
      in
      List.iter
        (fun e ->
          step t1 e;
          step t0 e;
          if Accrt.Coherence.get t1 "v" Gpu <> Accrt.Coherence.get t0 "v" Gpu
          then QCheck.Test.fail_report "GPU statuses diverged";
          if Accrt.Coherence.get t1 "v" Cpu <> Accrt.Coherence.get t0 "v" Cpu
          then QCheck.Test.fail_report "CPU statuses diverged";
          (* the join of one member is exactly that member's status *)
          if
            Accrt.Coherence.get t1 "v" Gpu
            <> Accrt.Coherence.gpu_status t1 "v" 0
          then QCheck.Test.fail_report "join of one <> member status")
        events;
      kinds t1 = kinds t0)

(* Cross-device redundancy golden: when member statuses diverge, an
   upload is judged per member and names the device whose copy was
   already current. *)
let test_cross_device_redundant () =
  let t = Accrt.Coherence.create ~devices:2 () in
  Accrt.Coherence.check_write t "v" Cpu;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up1");
  (* a uniform fresh set keeps the single-device verdict *)
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up2");
  (match Accrt.Coherence.reports t with
  | [ r ] ->
      Alcotest.(check string) "uniform set, plain verdict"
        "copying v from host to device in up2 is redundant"
        r.Accrt.Coherence.r_desc
  | rs -> Alcotest.failf "expected one report, got %d" (List.length rs));
  (* member 1 falls behind: the re-broadcast is useful there but
     redundant on member 0 — and the report says which *)
  Accrt.Coherence.set_gpu t "v" 1 Stale;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up3");
  (match List.rev (Accrt.Coherence.reports t) with
  | r :: _ ->
      Alcotest.(check bool) "kind" true
        (r.Accrt.Coherence.r_kind = Accrt.Coherence.Redundant);
      Alcotest.(check string) "per-device verdict"
        "copying v from host to device in up3 is redundant on device 0 (its \
         copy is already current)"
        r.Accrt.Coherence.r_desc
  | [] -> Alcotest.fail "expected a report");
  Alcotest.(check int) "two reports so far" 2
    (List.length (Accrt.Coherence.reports t));
  (* after losing member 1 the set is uniform again: plain verdict *)
  Accrt.Coherence.on_device_lost t 1;
  Accrt.Coherence.on_transfer t "v" H2D ~site:(site "up4");
  match List.rev (Accrt.Coherence.reports t) with
  | r :: _ ->
      Alcotest.(check string) "survivor-only verdict"
        "copying v from host to device in up4 is redundant"
        r.Accrt.Coherence.r_desc
  | [] -> Alcotest.fail "expected a report"

let tests =
  [ Alcotest.test_case "clean sequence" `Quick test_clean_sequence;
    Alcotest.test_case "missing transfer" `Quick test_missing;
    Alcotest.test_case "redundant transfer" `Quick test_redundant;
    Alcotest.test_case "incorrect transfer" `Quick test_incorrect;
    Alcotest.test_case "may-redundant via reset" `Quick
      test_may_redundant_via_reset;
    Alcotest.test_case "may-missing on write" `Quick test_may_missing_on_write;
    Alcotest.test_case "free stales device copy" `Quick test_free_stales_gpu;
    Alcotest.test_case "loop context in reports" `Quick test_loop_context;
    QCheck_alcotest.to_alcotest coherence_invariant;
    Alcotest.test_case "per-device join" `Quick test_gpu_join;
    QCheck_alcotest.to_alcotest single_device_join_identity;
    Alcotest.test_case "cross-device redundant" `Quick
      test_cross_device_redundant ]
