(* Resilient-runtime tests: injected device faults surface as typed
   errors under the [none] policy; [retry] recovers transients by
   retry / checksum re-transfer / checkpointed re-execution with every
   recovery validated against the sequential reference; [full]
   additionally degrades to CPU fallback (host mode after device loss) so
   no fault ever yields a silently wrong result.  Coherence states after
   retried transfers and re-executed kernels must match a fault-free run. *)

open Accrt

let plan spec =
  match Gpusim.Fault_plan.of_spec ~seed:42 spec with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad spec %S: %s" spec e

let run ?instrument ?resilience ?spec ?devices ?schedule src =
  let plan = Option.map plan spec in
  Interp.run_string ?instrument ?plan ?resilience ?devices ?schedule src

let arr o name i = Gpusim.Buf.get_float (Interp.host_array o name) i

let stats (o : Interp.outcome) = o.Interp.resilience

(* One kernel: b[i] = 2 a[i] + 1. *)
let simple_src =
  "int main() { int n = 64; float a[n]; float b[n];\n\
   for (int i = 0; i < n; i++) { a[i] = float(i); }\n\
   #pragma acc data copyin(a) copyout(b)\n\
   {\n\
   #pragma acc kernels loop\n\
   for (int i = 0; i < n; i++) { b[i] = a[i] * 2.0 + 1.0; }\n\
   }\n\
   return 0; }"

(* Two chained kernels: b = a + 1 on the device stays device-fresh when
   the device dies before the second kernel. *)
let chained_src =
  "int main() { int n = 32; float a[n]; float b[n]; float c[n];\n\
   for (int i = 0; i < n; i++) { a[i] = float(i); }\n\
   #pragma acc data copyin(a) create(b) copyout(c)\n\
   {\n\
   #pragma acc kernels loop\n\
   for (int i = 0; i < n; i++) { b[i] = a[i] + 1.0; }\n\
   #pragma acc kernels loop\n\
   for (int i = 0; i < n; i++) { c[i] = b[i] * 2.0; }\n\
   }\n\
   return 0; }"

let check_simple o =
  for i = 0 to 63 do
    Alcotest.(check (float 1e-9))
      (Fmt.str "b[%d]" i)
      ((2.0 *. float_of_int i) +. 1.0)
      (arr o "b" i)
  done

let check_chained o =
  for i = 0 to 31 do
    Alcotest.(check (float 1e-9))
      (Fmt.str "c[%d]" i)
      (2.0 *. (float_of_int i +. 1.0))
      (arr o "c" i)
  done

(* -------------------------- typed errors --------------------------- *)

let test_none_policy_propagates () =
  let raises spec expected_kind =
    match run ~spec simple_src with
    | _ -> Alcotest.failf "%s: expected a device fault" spec
    | exception Gpusim.Device.Device_fault f ->
        Alcotest.(check string) (spec ^ ": kind") expected_kind
          (Gpusim.Fault_plan.kind_name f.Gpusim.Device.f_kind)
  in
  raises "xfer-fail" "xfer-fail";
  raises "xfer-partial" "xfer-partial";
  raises "launch-fail" "launch-fail";
  raises "launch-timeout" "launch-timeout";
  raises "oom" "oom";
  raises "device-lost" "device-lost";
  (* ECC-detected bit flips poison the launch under [none] too *)
  raises "bitflip" "bitflip"

let test_fault_free_run_unchanged () =
  (* An armed policy without faults must not change results. *)
  let o = run ~resilience:Resilience.retry simple_src in
  check_simple o;
  Alcotest.(check int) "no recoveries" 0 (Resilience.recoveries (stats o));
  Alcotest.(check int) "no faults" 0
    (Interp.metrics o).Gpusim.Metrics.faults_injected

(* ------------------------- retry recovery -------------------------- *)

let test_retry_transfer () =
  let o = run ~resilience:Resilience.retry ~spec:"xfer-fail" simple_src in
  check_simple o;
  let st = stats o in
  Alcotest.(check bool) "retried" true (st.Resilience.retries >= 1);
  Alcotest.(check int) "recovered" 0 st.Resilience.unrecovered;
  Alcotest.(check bool) "recovery time charged" true
    (Gpusim.Metrics.time_of (Interp.metrics o) Gpusim.Metrics.Fault_recovery
     > 0.0)

let test_retry_partial_transfer () =
  let o = run ~resilience:Resilience.retry ~spec:"xfer-partial:a" simple_src in
  check_simple o;
  Alcotest.(check bool) "retried" true ((stats o).Resilience.retries >= 1)

let test_checksum_retransfer () =
  (* Silent corruption: only the end-to-end checksum can see it. *)
  let o = run ~resilience:Resilience.retry ~spec:"xfer-corrupt:a" simple_src in
  check_simple o;
  Alcotest.(check bool) "re-transferred" true
    ((stats o).Resilience.retransfers >= 1)

let test_bitflip_reexecution () =
  let o = run ~resilience:Resilience.retry ~spec:"bitflip:b" simple_src in
  check_simple o;
  let st = stats o in
  Alcotest.(check bool) "re-executed" true (st.Resilience.reexecs >= 1);
  Alcotest.(check bool) "recovery verified" true (st.Resilience.verified >= 1)

let test_launch_reexecution () =
  List.iter
    (fun spec ->
      let o = run ~resilience:Resilience.retry ~spec simple_src in
      check_simple o;
      let st = stats o in
      Alcotest.(check bool) (spec ^ ": re-executed") true
        (st.Resilience.reexecs >= 1);
      Alcotest.(check bool) (spec ^ ": verified") true
        (st.Resilience.verified >= 1))
    [ "launch-fail"; "launch-timeout" ]

let test_oom_retry () =
  let o = run ~resilience:Resilience.retry ~spec:"oom" simple_src in
  check_simple o;
  Alcotest.(check bool) "alloc retried" true ((stats o).Resilience.retries >= 1)

let test_retry_exhaustion_is_loud () =
  (* A persistent fault exhausts the budget and raises — never returns a
     wrong answer silently. *)
  match run ~resilience:Resilience.retry ~spec:"xfer-fail:ax*" simple_src with
  | _ -> Alcotest.fail "expected Unrecovered"
  | exception Resilience.Unrecovered f ->
      Alcotest.(check string) "target" "a" f.Gpusim.Device.f_target

let test_device_lost_without_fallback () =
  match run ~resilience:Resilience.retry ~spec:"device-lost" simple_src with
  | _ -> Alcotest.fail "expected Unrecovered"
  | exception Resilience.Unrecovered f ->
      Alcotest.(check string) "kind" "device-lost"
        (Gpusim.Fault_plan.kind_name f.Gpusim.Device.f_kind)

(* --------------------------- CPU fallback -------------------------- *)

let test_full_oom_demotes_to_host () =
  (* Allocation never succeeds: the arrays stay host-resident and every
     kernel runs as its sequential region. *)
  let o = run ~resilience:Resilience.full ~spec:"oomx*" simple_src in
  check_simple o;
  let st = stats o in
  Alcotest.(check bool) "fell back" true (st.Resilience.fallbacks >= 1);
  Alcotest.(check int) "no unrecovered" 0 st.Resilience.unrecovered

let test_full_persistent_transfer_demotes () =
  let o = run ~resilience:Resilience.full ~spec:"xfer-fail:ax*" simple_src in
  check_simple o;
  Alcotest.(check int) "no unrecovered" 0 (stats o).Resilience.unrecovered

let test_device_lost_host_mode () =
  (* Lost at the very first opportunity: the whole program runs in host
     mode and still produces correct outputs. *)
  let o = run ~resilience:Resilience.full ~spec:"device-lost" simple_src in
  check_simple o;
  let st = stats o in
  Alcotest.(check bool) "device lost" true st.Resilience.device_lost;
  Alcotest.(check bool) "kernels fell back" true (st.Resilience.fallbacks >= 1);
  Alcotest.(check int) "no unrecovered" 0 st.Resilience.unrecovered

let test_device_lost_mid_run_restores_mirrors () =
  (* The device dies at the second kernel's launch; b's freshest copy
     lives only in device memory and must be recovered from the
     resilience mirror for the CPU fallback to see it. *)
  let o =
    run ~resilience:Resilience.full ~spec:"device-lost:main_kernel1"
      chained_src
  in
  check_chained o;
  let st = stats o in
  Alcotest.(check bool) "device lost" true st.Resilience.device_lost;
  Alcotest.(check int) "no unrecovered" 0 st.Resilience.unrecovered

let test_acc_num_devices_after_loss () =
  (* Programs can poll device health through the standard routine. *)
  let device = Gpusim.Device.create () in
  let lost =
    Gpusim.Device.create
      ~plan:(Gpusim.Fault_plan.create [ Gpusim.Fault_plan.mk_rule Gpusim.Fault_plan.Device_lost ])
      ()
  in
  (try Gpusim.Device.alloc lost "a" ~like:(Gpusim.Buf.create_float 4)
   with Gpusim.Device.Device_fault _ -> ());
  Alcotest.(check bool) "alive" true (Gpusim.Device.alive device);
  Alcotest.(check bool) "lost" false (Gpusim.Device.alive lost)

(* ---------------------- device-set failover ------------------------ *)

(* A member dies at its shard's launch gate: the survivors re-execute the
   lost shard and the recovery verifies against the sequential
   reference — under both schedules and both recovering policies. *)
let test_failover_reexecutes_shard () =
  List.iter
    (fun (schedule, policy) ->
      let o =
        run ~resilience:policy ~spec:"device-lost:main_kernel0#1" ~devices:2
          ~schedule simple_src
      in
      check_simple o;
      let st = stats o in
      Alcotest.(check int) "one member lost" 1 st.Resilience.devices_lost;
      Alcotest.(check bool) "shard failed over" true
        (st.Resilience.failovers >= 1);
      Alcotest.(check bool) "recovery verified" true
        (st.Resilience.verified >= 1);
      Alcotest.(check int) "no unrecovered" 0 st.Resilience.unrecovered;
      Alcotest.(check bool) "failover time charged" true
        (Gpusim.Metrics.time_of (Interp.metrics o) Gpusim.Metrics.Fault_recovery
         > 0.0))
    [ (Gpusim.Device_set.Block, Resilience.retry);
      (Gpusim.Device_set.Cyclic, Resilience.retry);
      (Gpusim.Device_set.Block, Resilience.full) ]

(* A secondary member dying does not break later kernels: the survivors
   keep the coherent copy and the chained program still checks out. *)
let test_failover_chained_kernels () =
  let o =
    run ~resilience:Resilience.retry ~spec:"device-lost:main_kernel0#1"
      ~devices:2 chained_src
  in
  check_chained o;
  Alcotest.(check int) "no unrecovered" 0 (stats o).Resilience.unrecovered

(* Every member dies: [full] degrades the whole program to host mode and
   still produces correct outputs; [retry] has nowhere left to run and
   must fail loudly. *)
let test_all_members_lost () =
  let o =
    run ~resilience:Resilience.full ~spec:"device-lost#0,device-lost#1"
      ~devices:2 simple_src
  in
  check_simple o;
  let st = stats o in
  Alcotest.(check bool) "losses recorded" true (st.Resilience.devices_lost >= 1);
  Alcotest.(check bool) "device lost" true st.Resilience.device_lost;
  Alcotest.(check bool) "fell back to host" true (st.Resilience.fallbacks >= 1);
  Alcotest.(check int) "no unrecovered" 0 st.Resilience.unrecovered;
  match
    run ~resilience:Resilience.retry ~spec:"device-lost#0,device-lost#1"
      ~devices:2 simple_src
  with
  | _ -> Alcotest.fail "expected Unrecovered"
  | exception Resilience.Unrecovered f ->
      Alcotest.(check string) "kind" "device-lost"
        (Gpusim.Fault_plan.kind_name f.Gpusim.Device.f_kind)

(* ----------------------- Acc_api multi-device ---------------------- *)

let test_acc_api_device_set_corners () =
  let set = Gpusim.Device_set.create ~seed:3 3 in
  let st = Acc_api.create set in
  let call name args =
    match Acc_api.hook st name args with
    | Some (Value.Int n) -> n
    | Some (Value.Flt _) -> Alcotest.failf "%s returned a float" name
    | None -> Alcotest.failf "%s not handled" name
  in
  let nvidia = Acc_api.acc_device_nvidia in
  Alcotest.(check int) "three accelerators" 3
    (call "acc_get_num_devices" [ Value.Int nvidia ]);
  Alcotest.(check int) "one host" 1
    (call "acc_get_num_devices" [ Value.Int Acc_api.acc_device_host ]);
  (* selecting a member redirects [current] *)
  Alcotest.(check int) "set device 2" 0
    (call "acc_set_device_num" [ Value.Int 2; Value.Int nvidia ]);
  Alcotest.(check int) "get device num" 2
    (call "acc_get_device_num" [ Value.Int nvidia ]);
  Alcotest.(check bool) "current follows selection" true
    (Acc_api.current st == Gpusim.Device_set.device set 2);
  (* out-of-range ordinals are ignored, selection unchanged *)
  ignore (call "acc_set_device_num" [ Value.Int 7; Value.Int nvidia ]);
  ignore (call "acc_set_device_num" [ Value.Int (-1); Value.Int nvidia ]);
  Alcotest.(check int) "selection survives bad ordinals" 2
    (call "acc_get_device_num" [ Value.Int nvidia ]);
  (* a lost member drops out of the count but host stays countable *)
  let d1 = Gpusim.Device_set.device set 1 in
  d1.Gpusim.Device.plan.Gpusim.Fault_plan.lost <- true;
  Alcotest.(check int) "lost member not counted" 2
    (call "acc_get_num_devices" [ Value.Int nvidia ]);
  Alcotest.(check int) "host unaffected" 1
    (call "acc_get_num_devices" [ Value.Int Acc_api.acc_device_host ])

(* -------------------------- determinism ---------------------------- *)

let test_reports_reproducible () =
  let report src spec =
    let p = plan spec in
    let o = Interp.run_string ~plan:p ~resilience:Resilience.full ~seed:42 src in
    Resilience.report_json ~seed:42 ~plan:p ~policy:Resilience.full
      ~metrics:(Interp.metrics o) (stats o)
  in
  List.iter
    (fun spec ->
      Alcotest.(check string)
        (Fmt.str "same seed, byte-identical report (%s)" spec)
        (report simple_src spec) (report simple_src spec))
    [ "xfer-fail"; "bitflip:b@0.5x*"; "device-lost:main_kernel0";
      "xfer-corrupt@0.5x*,launch-fail" ]

(* ----------------- coherence-state equivalence --------------------- *)

(* After a retried transfer or a re-executed kernel, the §III-B coherence
   automaton must be exactly where a fault-free run leaves it: hooks fire
   once per logical operation, however many physical attempts recovery
   takes. *)
let coherence_fingerprint (o : Interp.outcome) =
  let states =
    Hashtbl.fold
      (fun v (s : Coherence.var_state) acc ->
        (v,
         Codegen.Tprog.status_name s.Coherence.cpu.Coherence.status,
         Codegen.Tprog.status_name s.Coherence.gpu.Coherence.status)
        :: acc)
      o.Interp.coherence.Coherence.states []
    |> List.sort compare
  in
  (states, Coherence.summarize (Interp.reports o))

let test_coherence_equivalence () =
  let specs =
    [ "xfer-fail"; "xfer-partial"; "xfer-corrupt"; "bitflip";
      "launch-fail"; "launch-timeout"; "oom";
      "xfer-failx2,launch-fail,bitflip@0.5x2" ]
  in
  List.iter
    (fun (b : Suite.Bench_def.t) ->
      let baseline =
        Interp.run_string ~instrument:true ~seed:42 b.Suite.Bench_def.source
      in
      let want = coherence_fingerprint baseline in
      List.iter
        (fun spec ->
          let faulty =
            Interp.run_string ~instrument:true ~seed:42 ~plan:(plan spec)
              ~resilience:Resilience.retry b.Suite.Bench_def.source
          in
          let got = coherence_fingerprint faulty in
          Alcotest.(check bool)
            (Fmt.str "%s + %s: coherence states match fault-free run"
               b.Suite.Bench_def.name spec)
            true (want = got))
        specs)
    (List.filter_map Suite.Registry.find [ "jacobi"; "hotspot"; "nw" ])

(* ------------------------- fault matrix ---------------------------- *)

let test_fault_matrix_small () =
  let subjects =
    List.filter_map
      (fun n ->
        Option.map
          (fun (b : Suite.Bench_def.t) ->
            { Openarc_core.Fault_matrix.s_name = b.Suite.Bench_def.name;
              s_source = b.Suite.Bench_def.source;
              s_outputs = b.Suite.Bench_def.outputs })
          (Suite.Registry.find n))
      [ "jacobi"; "ep" ]
  in
  let m = Openarc_core.Fault_matrix.run ~seed:42 subjects in
  Alcotest.(check bool) "every cell recovers verified-correct" true
    (Openarc_core.Fault_matrix.all_ok m);
  (* transient kinds sweep two policies, device-lost only [full] *)
  Alcotest.(check int) "cell count" (2 * ((7 * 2) + 1))
    (List.length m.Openarc_core.Fault_matrix.cells);
  (* device-loss rows: primary and last member killed at a launch gate,
     each under [retry] and [full] — every cell must fail over and verify
     the recovery, not merely complete *)
  let m2 =
    Openarc_core.Fault_matrix.run ~seed:42 ~device_counts:[ 2 ] subjects
  in
  Alcotest.(check bool) "device-loss cells recover verified-correct" true
    (Openarc_core.Fault_matrix.all_ok m2);
  let failover_cells =
    List.filter
      (fun c -> c.Openarc_core.Fault_matrix.c_devices > 1)
      m2.Openarc_core.Fault_matrix.cells
  in
  Alcotest.(check int) "2 lost ordinals x 2 policies per benchmark"
    (2 * 2 * 2)
    (List.length failover_cells);
  List.iter
    (fun c ->
      let what =
        Fmt.str "%s/%s" c.Openarc_core.Fault_matrix.c_bench
          c.Openarc_core.Fault_matrix.c_policy
      in
      Alcotest.(check bool) (what ^ ": shard failed over") true
        (c.Openarc_core.Fault_matrix.c_failovers >= 1);
      Alcotest.(check bool) (what ^ ": recovery verified") true
        (c.Openarc_core.Fault_matrix.c_verified >= 1))
    failover_cells

let tests =
  [ Alcotest.test_case "none policy propagates" `Quick
      test_none_policy_propagates;
    Alcotest.test_case "fault-free unchanged" `Quick
      test_fault_free_run_unchanged;
    Alcotest.test_case "retry transfer" `Quick test_retry_transfer;
    Alcotest.test_case "retry partial transfer" `Quick
      test_retry_partial_transfer;
    Alcotest.test_case "checksum re-transfer" `Quick test_checksum_retransfer;
    Alcotest.test_case "bitflip re-execution" `Quick test_bitflip_reexecution;
    Alcotest.test_case "launch re-execution" `Quick test_launch_reexecution;
    Alcotest.test_case "oom retry" `Quick test_oom_retry;
    Alcotest.test_case "retry exhaustion is loud" `Quick
      test_retry_exhaustion_is_loud;
    Alcotest.test_case "device lost without fallback" `Quick
      test_device_lost_without_fallback;
    Alcotest.test_case "oom demotes to host" `Quick
      test_full_oom_demotes_to_host;
    Alcotest.test_case "persistent transfer demotes" `Quick
      test_full_persistent_transfer_demotes;
    Alcotest.test_case "device lost -> host mode" `Quick
      test_device_lost_host_mode;
    Alcotest.test_case "device lost mid-run" `Quick
      test_device_lost_mid_run_restores_mirrors;
    Alcotest.test_case "acc_get_num_devices" `Quick
      test_acc_num_devices_after_loss;
    Alcotest.test_case "failover re-executes shard" `Quick
      test_failover_reexecutes_shard;
    Alcotest.test_case "failover chained kernels" `Quick
      test_failover_chained_kernels;
    Alcotest.test_case "all members lost" `Quick test_all_members_lost;
    Alcotest.test_case "acc_api device-set corners" `Quick
      test_acc_api_device_set_corners;
    Alcotest.test_case "reports reproducible" `Quick
      test_reports_reproducible;
    Alcotest.test_case "coherence equivalence" `Quick
      test_coherence_equivalence;
    Alcotest.test_case "fault matrix (small)" `Quick test_fault_matrix_small ]
