(** Regeneration harness for every table and figure of the paper's
    evaluation (§IV).  Each [run_*] function prints the table/series the
    paper reports; absolute simulated numbers differ from the authors'
    testbed, but the shapes (who wins, by what factor, where the outliers
    are) are the reproduction targets recorded in EXPERIMENTS.md. *)

open Suite

let benchmarks = Registry.all

let parse (b : Bench_def.t) = Minic.Parser.parse_string ~file:b.name b.source

let parse_opt (b : Bench_def.t) =
  Minic.Parser.parse_string ~file:(b.name ^ "-opt") b.optimized

let run_program prog =
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  Accrt.Interp.run ~coherence:false tp

let hr ppf = Fmt.pf ppf "%s@." (String.make 78 '-')

(* A log-scale ASCII bar (the paper's Figures 1 and 3 are log-scale). *)
let log_bar ?(width = 24) v =
  if v <= 1.0 then ""
  else
    let n =
      int_of_float (Float.round (log10 v /. 5.0 *. float_of_int width))
    in
    String.make (max 1 (min width n)) '#'

(* A linear bar for small percentages (Figure 4). *)
let lin_bar ?(width = 20) ~max_v v =
  let n = int_of_float (Float.round (v /. max_v *. float_of_int width)) in
  if n <= 0 then "" else String.make (min width n) '#'

(* ------------------------------------------------------------------ *)
(* Table I: qualitative comparison (static, from the paper).           *)
(* ------------------------------------------------------------------ *)

let run_table1 ppf =
  Fmt.pf ppf "Table I: comparison of debugging (DG) and optimization (OP) tools@.";
  hr ppf;
  Fmt.pf ppf "%-28s %-12s %-10s %-12s %-12s %s@." "Tool"
    "High-lvl DG/OP" "Data-xfer OP" "User interact" "Configurable"
    "Fine profiling";
  hr ppf;
  List.iter
    (fun (tool, a, b, c, d, e) ->
      Fmt.pf ppf "%-28s %-12s %-10s %-12s %-12s %s@." tool a b c d e)
    [ ("GPU PerfStudio/VisualProf", "No", "No", "Limited", "Limited", "Yes");
      ("TotalView and DDT", "Limited", "No", "Limited", "No", "Yes");
      ("[22],[23],[24]", "No", "Yes", "No", "Limited", "No");
      ("This work (OpenARC)", "Yes", "Yes", "Rich", "Rich", "No") ];
  hr ppf

(* ------------------------------------------------------------------ *)
(* Figure 1: default memory scheme vs fully optimized                  *)
(* ------------------------------------------------------------------ *)

type fig1_row = {
  f1_name : string;
  f1_time_ratio : float;  (** naive / optimized simulated execution time *)
  f1_bytes_ratio : float;  (** naive / optimized transferred bytes *)
}

let fig1_rows () =
  List.map
    (fun b ->
      let o_naive = run_program (parse b) in
      let o_opt = run_program (parse_opt b) in
      let m_naive = Accrt.Interp.metrics o_naive in
      let m_opt = Accrt.Interp.metrics o_opt in
      let safe x = Float.max x 1e-12 in
      { f1_name = b.Bench_def.name;
        f1_time_ratio =
          Gpusim.Metrics.total_time m_naive
          /. safe (Gpusim.Metrics.total_time m_opt);
        f1_bytes_ratio =
          float_of_int (max 1 (Gpusim.Metrics.total_bytes m_naive))
          /. safe (float_of_int (max 1 (Gpusim.Metrics.total_bytes m_opt))) })
    benchmarks

let run_fig1 ppf =
  Fmt.pf ppf
    "Figure 1: OpenACC default memory scheme, normalized to fully \
     optimized code@.";
  hr ppf;
  Fmt.pf ppf "%-10s %14s %-26s %14s@." "Benchmark" "time x" "(log bar)"
    "bytes x";
  hr ppf;
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %14.2f %-26s %14.2f %s@." r.f1_name r.f1_time_ratio
        (log_bar r.f1_time_ratio) r.f1_bytes_ratio (log_bar r.f1_bytes_ratio))
    (fig1_rows ());
  hr ppf;
  Fmt.pf ppf
    "(log-scale in the paper; expected shape: every benchmark >= 1x, \
     transfer-bound codes reach 10^2..10^5)@."

(* ------------------------------------------------------------------ *)
(* Figure 3 + Table II: kernel verification                             *)
(* ------------------------------------------------------------------ *)

type fig3_row = {
  f3_name : string;
  f3_breakdown : (string * float) list;  (** category -> x of sequential *)
  f3_total : float;
}

let fig3_rows () =
  List.map
    (fun b ->
      let v = Openarc_core.Kernel_verify.verify (parse b) in
      let m = v.Openarc_core.Kernel_verify.metrics in
      let seq_time =
        Gpusim.Costmodel.cpu_time Gpusim.Costmodel.default
          ~ops:v.Openarc_core.Kernel_verify.sequential_ops
      in
      let seq_time = Float.max seq_time 1e-12 in
      let cats =
        [ Gpusim.Metrics.Gpu_free; Gpusim.Metrics.Gpu_alloc;
          Gpusim.Metrics.Mem_transfer; Gpusim.Metrics.Async_wait;
          Gpusim.Metrics.Result_comp; Gpusim.Metrics.Cpu_time ]
      in
      { f3_name = b.Bench_def.name;
        f3_breakdown =
          List.map
            (fun c ->
              (Gpusim.Metrics.category_name c,
               Gpusim.Metrics.time_of m c /. seq_time))
            cats;
        f3_total = Gpusim.Metrics.total_time m /. seq_time })
    benchmarks

let run_fig3 ppf =
  Fmt.pf ppf
    "Figure 3: kernel-verification execution time, normalized to \
     sequential CPU execution@.";
  hr ppf;
  Fmt.pf ppf "%-10s %8s %8s %8s %8s %8s %8s %9s@." "Benchmark" "Free"
    "Alloc" "Xfer" "Wait" "Comp" "CPU" "Total";
  hr ppf;
  List.iter
    (fun r ->
      let get n = List.assoc n r.f3_breakdown in
      Fmt.pf ppf "%-10s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f %9.2f  %s@."
        r.f3_name
        (get "GPU Mem Free") (get "GPU Mem Alloc") (get "Mem Transfer")
        (get "Async-Wait") (get "Result-Comp") (get "CPU Time") r.f3_total
        (log_bar ~width:16 r.f3_total))
    (fig3_rows ());
  hr ppf;
  Fmt.pf ppf
    "(expected shape: Result-Comp and Mem Transfer dominate; one \
     many-kernel benchmark is the outlier)@."

let table2_census () =
  List.fold_left
    (fun acc b ->
      Openarc_core.Faults.add acc
        (Openarc_core.Faults.census_of_program (parse b)))
    Openarc_core.Faults.empty benchmarks

let run_table2 ppf =
  let c = table2_census () in
  Fmt.pf ppf
    "Table II: kernel verification of injected missing-privatization / \
     missing-reduction races@.";
  hr ppf;
  Fmt.pf ppf "%-55s %6s %10s@." "Description" "Count" "(paper)";
  hr ppf;
  let row desc count paper =
    Fmt.pf ppf "%-55s %6d %10s@." desc count paper
  in
  row "Number of tested kernels" c.Openarc_core.Faults.kernels "46";
  row "Number of kernels containing private data"
    c.Openarc_core.Faults.with_private "16";
  row "Number of kernels containing reduction"
    c.Openarc_core.Faults.with_reduction "4";
  row "Number of kernels incurring active errors"
    c.Openarc_core.Faults.active_errors "4";
  row "Number of kernels incurring latent errors"
    c.Openarc_core.Faults.latent_errors "16";
  row "Active errors detected by kernel verification"
    c.Openarc_core.Faults.active_detected "4";
  row "Latent errors detected (invisible by design)"
    c.Openarc_core.Faults.latent_detected "0";
  hr ppf

(* ------------------------------------------------------------------ *)
(* Table III: interactive memory-transfer optimization                  *)
(* ------------------------------------------------------------------ *)

type table3_row = {
  t3_name : string;
  t3_iterations : int;
  t3_incorrect : int;
  t3_uncaught : int;
  t3_converged : bool;
}

(* Ground-truth redundancy the tool failed to catch: an update directive in
   the tool-optimized program that can be deleted — or, when it sits in a
   loop, moved past the loop — without changing observable outputs. *)
let uncaught_redundancy prog ~outputs =
  let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  let ok candidate =
    try
      let env = Minic.Typecheck.check candidate in
      let tp = Codegen.Translate.translate env candidate in
      let o = Accrt.Interp.run ~coherence:false tp in
      Openarc_core.Session.outputs_match ~outputs ~reference o
    with _ -> false
  in
  let updates =
    List.filter_map
      (fun (sid, _, d) ->
        if d.Minic.Ast.dir = Minic.Ast.Acc_update then Some (sid, d)
        else None)
      (Acc.Query.directives_of prog)
  in
  List.length
    (List.filter
       (fun (sid, d) ->
         ok (Acc.Edit.remove_stmt prog ~sid)
         ||
         match Acc.Edit.enclosing_loop prog ~sid with
         | None -> false
         | Some l ->
             let vars =
               List.map
                 (fun sa -> sa.Minic.Ast.sub_var)
                 (Acc.Query.update_host_subs d)
             in
             vars <> []
             &&
             let moved =
               Acc.Edit.insert_after
                 (Acc.Edit.remove_stmt prog ~sid)
                 ~sid:l.Minic.Ast.sid
                 [ Acc.Edit.mk_update ~host:true vars ]
             in
             ok moved)
       updates)

let table3_rows () =
  List.map
    (fun b ->
      let prog = parse b in
      let r =
        Openarc_core.Session.optimize ~outputs:b.Bench_def.outputs prog
      in
      { t3_name = b.Bench_def.name;
        t3_iterations = r.Openarc_core.Session.iterations;
        t3_incorrect = r.Openarc_core.Session.incorrect_iterations;
        t3_uncaught =
          uncaught_redundancy r.Openarc_core.Session.final
            ~outputs:b.Bench_def.outputs;
        t3_converged = r.Openarc_core.Session.converged })
    benchmarks

let run_table3 ppf =
  Fmt.pf ppf "Table III: memory-transfer-verification performance@.";
  hr ppf;
  Fmt.pf ppf "%-10s %18s %22s %22s@." "Benchmark" "# total iterations"
    "# incorrect iterations" "# uncaught redundancy";
  hr ppf;
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %18d %22d %22d%s@." r.t3_name r.t3_iterations
        r.t3_incorrect r.t3_uncaught
        (if r.t3_converged then "" else "  (not converged)"))
    (table3_rows ());
  hr ppf;
  Fmt.pf ppf
    "(paper: 2-4 iterations; BACKPROP 1 and LUD 3 incorrect; CFD 1 \
     uncaught)@."

(* ------------------------------------------------------------------ *)
(* Figure 4: memory-transfer-verification overhead                      *)
(* ------------------------------------------------------------------ *)

type fig4_row = { f4_name : string; f4_overhead_pct : float }

let fig4_rows () =
  List.map
    (fun b ->
      let prog = parse_opt b in
      let env = Minic.Typecheck.check prog in
      let tp = Codegen.Translate.translate env prog in
      (* Separate measurements get separate PCIe-jitter streams, as two
         wall-clock runs would on real hardware. *)
      let base = Accrt.Interp.run ~coherence:false ~seed:11 tp in
      let inst =
        Accrt.Interp.run ~coherence:true ~seed:77
          (Codegen.Checkgen.instrument tp)
      in
      let t0 = Gpusim.Metrics.total_time (Accrt.Interp.metrics base) in
      let t1 = Gpusim.Metrics.total_time (Accrt.Interp.metrics inst) in
      { f4_name = b.Bench_def.name;
        f4_overhead_pct = 100. *. ((t1 -. t0) /. Float.max t0 1e-12) })
    benchmarks

let run_fig4 ppf =
  Fmt.pf ppf
    "Figure 4: memory-transfer-verification overhead (%% of uninstrumented \
     run)@.";
  hr ppf;
  Fmt.pf ppf "%-10s %14s@." "Benchmark" "Overhead (%)";
  hr ppf;
  let rows = fig4_rows () in
  let max_v =
    List.fold_left (fun m r -> Float.max m (Float.abs r.f4_overhead_pct)) 1.0
      rows
  in
  List.iter
    (fun r ->
      Fmt.pf ppf "%-10s %14.2f  %s@." r.f4_name r.f4_overhead_pct
        (lin_bar ~max_v r.f4_overhead_pct))
    rows;
  hr ppf;
  Fmt.pf ppf
    "(paper: -1%%..5%%; negatives are PCIe timing variance on short runs)@."

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md §5)                                             *)
(* ------------------------------------------------------------------ *)

let run_ablation ppf =
  Fmt.pf ppf
    "Ablation: optimized vs naive coherence-check placement (checks \
     inserted / executed / simulated overhead %%)@.";
  hr ppf;
  Fmt.pf ppf "%-10s %10s %10s %12s %12s %10s %10s@." "Benchmark" "opt-ins"
    "naive-ins" "opt-exec" "naive-exec" "opt-ov%" "naive-ov%";
  hr ppf;
  List.iter
    (fun (b : Bench_def.t) ->
      let prog = parse_opt b in
      let env = Minic.Typecheck.check prog in
      let tp = Codegen.Translate.translate env prog in
      let t0 =
        Gpusim.Metrics.total_time
          (Accrt.Interp.metrics (Accrt.Interp.run ~coherence:false tp))
      in
      let measure mode =
        let tp' = Codegen.Checkgen.instrument ~mode tp in
        let o = Accrt.Interp.run ~coherence:true tp' in
        let t = Gpusim.Metrics.total_time (Accrt.Interp.metrics o) in
        (Codegen.Tprog.count_checks tp',
         o.Accrt.Interp.coherence.Accrt.Coherence.checks_executed,
         100. *. ((t -. t0) /. Float.max t0 1e-12))
      in
      let oi, oe, oo = measure Codegen.Checkgen.Optimized in
      let ni, ne, no_ = measure Codegen.Checkgen.Naive in
      Fmt.pf ppf "%-10s %10d %10d %12d %12d %10.2f %10.2f@."
        b.Bench_def.name oi ni oe ne oo no_)
    benchmarks;
  hr ppf

(* Coarse vs fine coherence granularity: detection power and tracking
   cost (the trade-off §III-B argues about). *)
let run_granularity ppf =
  Fmt.pf ppf
    "Ablation: coarse (paper default) vs fine (interval) coherence \
     granularity@.";
  hr ppf;
  Fmt.pf ppf "%-10s %14s %14s %16s %16s@." "Benchmark" "coarse reports"
    "fine reports" "coarse iv-ops" "fine iv-ops";
  hr ppf;
  List.iter
    (fun (b : Bench_def.t) ->
      let measure granularity =
        let prog = parse b in
        let env = Minic.Typecheck.check prog in
        let tp = Codegen.Translate.translate env prog in
        let tp = Codegen.Checkgen.instrument tp in
        let o = Accrt.Interp.run ~coherence:true ~granularity tp in
        (List.length (Accrt.Interp.reports o),
         o.Accrt.Interp.coherence.Accrt.Coherence.interval_ops)
      in
      let cr, ci = measure Accrt.Coherence.Coarse in
      let fr, fi = measure Accrt.Coherence.Fine in
      Fmt.pf ppf "%-10s %14d %14d %16d %16d@." b.Bench_def.name cr fr ci fi)
    benchmarks;
  (* A seeded partial-update bug: the kernel rewrites the whole array but
     only a prefix is downloaded before a host read of the full array.
     Whole-array tracking is fooled by the partial copy; interval tracking
     reports the missing transfer. *)
  let partial_bug =
    "int main() { int n = 256; float a[n]; float cs = 0.0;\n\
     for (int i = 0; i < n; i++) { a[i] = 1.0; }\n\
     #pragma acc data copy(a)\n{\n#pragma acc kernels loop\n\
     for (int i = 0; i < n; i++) { a[i] = a[i] * 2.0; }\n\
     #pragma acc update host(a[0:8])\n\
     for (int i = 0; i < n; i++) { cs = cs + a[i]; }\na[0] = cs;\n}\n\
     return 0; }"
  in
  let measure_partial granularity =
    let prog = Minic.Parser.parse_string partial_bug in
    let env = Minic.Typecheck.check prog in
    let tp =
      Codegen.Checkgen.instrument (Codegen.Translate.translate env prog)
    in
    let o = Accrt.Interp.run ~coherence:true ~granularity tp in
    (List.length
       (List.filter
          (fun (r : Accrt.Coherence.report) ->
            r.Accrt.Coherence.r_kind = Accrt.Coherence.Missing)
          (Accrt.Interp.reports o)),
     o.Accrt.Interp.coherence.Accrt.Coherence.interval_ops)
  in
  let cr, ci = measure_partial Accrt.Coherence.Coarse in
  let fr, fi = measure_partial Accrt.Coherence.Fine in
  Fmt.pf ppf "%-10s %14d %14d %16d %16d  <- missing-transfer reports@."
    "PARTIAL*" cr fr ci fi;
  hr ppf;
  Fmt.pf ppf
    "(fine tracking finds at least as much and pays interval-maintenance \
     work for it; PARTIAL* is a seeded partial-download bug that only the \
     fine mode exposes; whole-array tracking is the paper's choice)@."

(* Parameter sweep: the Figure-1 ratios grow with the iteration count (the
   paper ran "the largest available inputs"; we show the trend that links
   our scaled-down workloads to its 10^4-10^5 extremes). *)
let run_sweep ppf =
  Fmt.pf ppf
    "Sweep: JACOBI default-scheme penalty vs iteration count (Figure-1 \
     trend)@.";
  hr ppf;
  Fmt.pf ppf "%-12s %16s %18s@." "iterations" "time ratio" "bytes ratio";
  hr ppf;
  List.iter
    (fun iters ->
      let rescale src =
        Str_util.replace ~needle:"int iters = 20;"
          ~with_:(Fmt.str "int iters = %d;" iters)
          src
      in
      let b = Jacobi.bench in
      let o_naive =
        run_program
          (Minic.Parser.parse_string (rescale b.Bench_def.source))
      in
      let o_opt =
        run_program
          (Minic.Parser.parse_string (rescale b.Bench_def.optimized))
      in
      let m_naive = Accrt.Interp.metrics o_naive in
      let m_opt = Accrt.Interp.metrics o_opt in
      Fmt.pf ppf "%-12d %16.2f %18.2f@." iters
        (Gpusim.Metrics.total_time m_naive
        /. Float.max 1e-12 (Gpusim.Metrics.total_time m_opt))
        (float_of_int (Gpusim.Metrics.total_bytes m_naive)
        /. Float.max 1.0 (float_of_int (Gpusim.Metrics.total_bytes m_opt))))
    [ 5; 10; 20; 40; 80; 160 ];
  hr ppf;
  Fmt.pf ppf
    "(bytes ratio grows linearly with iterations: at the paper's \
     production iteration counts it reaches the 10^3..10^5 of Figure 1)@."

(* Fault-matrix sweep: the resilience counterpart of the performance
   tables.  Every fault kind x recovery policy cell across the suite must
   recover verified-correct or degrade to CPU fallback; the per-cell
   overhead column is the simulated-time cost of recovery vs. the
   fault-free baseline. *)
let run_faults ?json ppf =
  Fmt.pf ppf "Fault matrix: recovery across the suite (seeded, one-shot \
              faults)@.";
  hr ppf;
  let subjects =
    List.map
      (fun (b : Bench_def.t) ->
        { Openarc_core.Fault_matrix.s_name = b.Bench_def.name;
          s_source = b.Bench_def.source;
          s_outputs = b.Bench_def.outputs })
      benchmarks
  in
  let m = Openarc_core.Fault_matrix.run ~seed:42 subjects in
  Fmt.pf ppf "%a@." Openarc_core.Fault_matrix.pp m;
  (match json with
  | Some path ->
      let oc = open_out path in
      output_string oc (Openarc_core.Fault_matrix.to_json m);
      output_char oc '\n';
      close_out oc;
      Fmt.pf ppf "matrix written to %s@." path
  | None -> ());
  hr ppf;
  Fmt.pf ppf
    "(transient kinds sweep the retry and full policies; device-lost \
     requires full's host-mode fallback; a FAIL cell means a fault \
     produced a wrong or unrecovered result)@."

let run_all ppf =
  run_table1 ppf; Fmt.pf ppf "@.";
  run_fig1 ppf; Fmt.pf ppf "@.";
  run_table2 ppf; Fmt.pf ppf "@.";
  run_fig3 ppf; Fmt.pf ppf "@.";
  run_table3 ppf; Fmt.pf ppf "@.";
  run_fig4 ppf; Fmt.pf ppf "@.";
  run_ablation ppf; Fmt.pf ppf "@.";
  run_granularity ppf; Fmt.pf ppf "@.";
  run_sweep ppf; Fmt.pf ppf "@.";
  run_faults ppf

(* Per-directive profile sweep: the observability counterpart of Figure
   3/4.  Each benchmark runs once (seed 42, source variant, coherence
   off) under a span trace; the per-directive cost report must conserve
   the metrics total bit-exactly, and the canonical JSON is byte-stable,
   so the committed BENCH_profile.json doubles as a regression baseline. *)

let profile_path = "BENCH_profile.json"

let profile_categories =
  List.map Gpusim.Metrics.category_name Gpusim.Metrics.all_categories

let profile_entry ?(devices = 1) ?(schedule = Gpusim.Device_set.Block)
    (b : Bench_def.t) =
  let prog = parse b in
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let tr = Obs.Trace.create () in
  let o =
    Accrt.Interp.run ~coherence:false ~seed:42 ~devices ~schedule ~obs:tr tp
  in
  let total = Gpusim.Metrics.total_time (Accrt.Interp.metrics o) in
  let p = Obs.Profile.of_trace ~categories:profile_categories tr in
  if not (Obs.Profile.conserves p ~total) then
    Fmt.failwith "profile conservation violated for %s" b.Bench_def.name;
  ( b.Bench_def.name,
    total,
    String.trim (Obs.Profile.to_json ~name:b.Bench_def.name ~seed:42 p) )

let profile_doc entries =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    "{\n\"schema\": \"openarc.obs.bench-profile\",\n\"version\": 1,\n\
     \"seed\": 42,\n\"benchmarks\": [\n";
  List.iteri
    (fun i (_, _, e) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf e)
    entries;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let run_profile ?(json = profile_path) ppf =
  Fmt.pf ppf "Per-directive profile sweep (seed 42, source variant)@.";
  hr ppf;
  let entries = List.map profile_entry benchmarks in
  List.iter
    (fun (name, total, _) ->
      Fmt.pf ppf "  %-12s %12.9f s  conservation exact@." name total)
    entries;
  let oc = open_out json in
  output_string oc (profile_doc entries);
  close_out oc;
  hr ppf;
  Fmt.pf ppf "profile baseline written to %s@." json

(* Byte-stability gate for CI: regenerate a 3-benchmark subset and require
   each entry to appear verbatim in the committed baseline. *)
let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  nn = 0 || go 0

let run_profile_smoke ppf =
  let committed =
    match open_in_bin profile_path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith "missing %s (run 'bench/main.exe profile' and commit \
                      the result)" profile_path
  in
  let names = [ "JACOBI"; "EP"; "SRAD" ] in
  let ok =
    List.for_all
      (fun n ->
        let b = List.find (fun b -> b.Bench_def.name = n) benchmarks in
        let _, total, entry = profile_entry b in
        if contains ~needle:entry committed then begin
          Fmt.pf ppf "  %-12s %12.9f s  matches baseline@." n total;
          true
        end
        else begin
          Fmt.pf ppf "  %-12s MISMATCH against %s@." n profile_path;
          false
        end)
      names
  in
  if ok then Fmt.pf ppf "profile smoke: %d/%d byte-stable@."
      (List.length names) (List.length names)
  else
    Fmt.failwith
      "profile smoke failed: regenerate with 'bench/main.exe profile' and \
       inspect the diff"

(* One instrumented, coherence-on run of [prog] with a data-movement
   ledger attached (seed 42): returns the ledger's counterfactual
   analysis after asserting byte conservation — the ledger's counted
   per-direction totals must equal the metrics accumulators summed over
   every device-set member, integer [=], no tolerance. *)
let ledger_run ?(devices = 1) ?(schedule = Gpusim.Device_set.Block) ~name
    prog =
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let tp = Codegen.Checkgen.instrument tp in
  let lg =
    Obs.Ledger.create ~devices
      ~schedule:(Gpusim.Device_set.schedule_name schedule)
  in
  let o =
    Accrt.Interp.run ~coherence:true ~seed:42 ~devices ~schedule ~ledger:lg
      tp
  in
  let mh, md =
    Array.fold_left
      (fun (h, d) dev ->
        let m = dev.Gpusim.Device.metrics in
        (h + m.Gpusim.Metrics.bytes_h2d, d + m.Gpusim.Metrics.bytes_d2h))
      (0, 0) o.Accrt.Interp.devset.Gpusim.Device_set.devices
  in
  let lh, ld = Obs.Ledger.totals lg in
  if lh <> mh || ld <> md then
    Fmt.failwith
      "ledger conservation violated for %s: h2d %d vs metrics %d, d2h %d \
       vs metrics %d"
      name lh mh ld md;
  let cm = o.Accrt.Interp.device.Gpusim.Device.cm in
  ( Obs.Ledger.analyze lg ~pcie_latency:cm.Gpusim.Costmodel.pcie_latency
      ~pcie_bandwidth:cm.Gpusim.Costmodel.pcie_bandwidth,
    o )

(* ------------------------------------------------------------------ *)
(* Regression sentinel: trend accumulation and baseline diffing        *)
(* ------------------------------------------------------------------ *)

let trend_path = "BENCH_trend.jsonl"

(* Resolve a comma-separated --benches selection; unknown names raise
   (the CLI maps that to exit 2, malformed input). *)
let select = function
  | None -> benchmarks
  | Some names ->
      List.map
        (fun n ->
          let n = String.uppercase_ascii n in
          match
            List.find_opt (fun b -> b.Bench_def.name = n) benchmarks
          with
          | Some b -> b
          | None ->
              Fmt.failwith "unknown benchmark '%s' (expected one of %s)" n
                (String.concat ","
                   (List.map (fun b -> b.Bench_def.name) benchmarks)))
        names

(* The current sweep side of a diff re-parses its own canonical JSON so
   both sides of every comparison went through the same %.9f rounding:
   a clean tree diffs against the committed baseline to exactly zero. *)
let current_profile ?devices ?schedule b =
  let name, total, entry = profile_entry ?devices ?schedule b in
  match Obs.Diff.profile_of_json entry with
  | Ok (p, _, _) -> (name, total, p)
  | Error e ->
      Fmt.failwith "internal: generated profile for %s unparseable: %s" name
        e

let trend_line ~label ?(devices = 1) ?(schedule = "block")
    ?(bytes_total = 0) ?(bytes_wasted = 0) ?(saturate_saved_s = 0.0) name
    (p : Obs.Profile.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Fmt.str
       "{\"schema\": %s, \"version\": %d, \"name\": %s, \"seed\": 42, \
        \"devices\": %d, \"schedule\": %s, \"label\": %s, \"total\": \
        %.9f, \"bytes_total\": %d, \"bytes_wasted\": %d, \
        \"saturate_saved_s\": %.9f, \"totals\": {"
       (Obs.Trace.json_str (Obs.Trace.schema ^ ".bench-trend"))
       Obs.Trace.version
       (Obs.Trace.json_str name)
       devices
       (Obs.Trace.json_str schedule)
       (Obs.Trace.json_str label)
       p.Obs.Profile.p_total bytes_total bytes_wasted saturate_saved_s);
  List.iteri
    (fun i (c, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Fmt.str "%s: %.9f" (Obs.Trace.json_str c) v))
    p.Obs.Profile.p_totals;
  Buffer.add_string buf "}, \"counters\": {";
  List.iteri
    (fun i (c, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Fmt.str "%s: %d" (Obs.Trace.json_str c) v))
    p.Obs.Profile.p_counters;
  Buffer.add_string buf "}}";
  Buffer.contents buf

let run_trend ?(out = trend_path) ?names ?(label = "") ?(devices = 1)
    ?(schedule = Gpusim.Device_set.Block) ppf =
  let bs = select names in
  let sched = Gpusim.Device_set.schedule_name schedule in
  Fmt.pf ppf
    "Bench trend sweep (seed 42, %d device(s), %s schedule, source \
     variant)@."
    devices sched;
  hr ppf;
  let lines =
    List.map
      (fun b ->
        let name, total, p = current_profile ~devices ~schedule b in
        (* A second, instrumented run feeds the data-movement columns:
           total counted bytes and the ledger's wasted-byte verdict. *)
        let la, _ = ledger_run ~devices ~schedule ~name (parse b) in
        (* A saturate search (validated at the row's device count only —
           the full 1/2/4 ladder is the saturate tier's job) feeds the
           optimizer column: measured accepted saving, so a rewrite the
           search stops finding shows up as a drop in the series. *)
        let sat =
          Saturate.run
            ~config:
              { Saturate.default_config with
                Saturate.check_devices = [ devices ] }
            ~name ~outputs:b.Bench_def.outputs (parse b)
        in
        Fmt.pf ppf
          "  %-12s %12.9f s  %d byte(s), %d wasted  saturate %12.9f s@."
          name total
          (la.Obs.Ledger.a_h2d_bytes + la.Obs.Ledger.a_d2h_bytes)
          la.Obs.Ledger.a_wasted_bytes sat.Saturate.r_measured_s;
        trend_line ~label ~devices ~schedule:sched
          ~bytes_total:
            (la.Obs.Ledger.a_h2d_bytes + la.Obs.Ledger.a_d2h_bytes)
          ~bytes_wasted:la.Obs.Ledger.a_wasted_bytes
          ~saturate_saved_s:sat.Saturate.r_measured_s name p)
      bs
  in
  let oc = open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 out in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  hr ppf;
  Fmt.pf ppf "%d record(s) appended to %s@." (List.length lines) out

(* Per-benchmark relative tolerances for the regress gate.  The default
   absorbs cost-model retuning noise; short transfer-dominated runs get a
   slightly wider band because a single PCIe transaction is a coarser
   relative step of their total. *)
let default_tolerance = 0.02

let tolerances = [ ("EP", 0.03); ("HOTSPOT", 0.03) ]

let tolerance name =
  Option.value ~default:default_tolerance (List.assoc_opt name tolerances)

(* Saturate savings are small absolute quantities assembled from a handful
   of accepted rewrites, so the optimizer side of the sentinel gets a
   wider relative band; benchmarks whose searches hinge on one marginal
   candidate (EP's single in-band hoist, KMEANS's rejected one) wider
   still. *)
let saturate_default_tolerance = 0.10

let saturate_tolerances = [ ("EP", 0.25); ("KMEANS", 0.25) ]

let saturate_tolerance name =
  Option.value ~default:saturate_default_tolerance
    (List.assoc_opt name saturate_tolerances)

type regress_row = {
  rg_name : string;
  rg_tol : float;
  rg_status : string;  (* ok | regression | improved | missing-baseline *)
  rg_diff : Obs.Diff.t option;
  rg_culprits : Obs.Diff.row_delta list;
}

let baseline_profiles path =
  let doc =
    match open_in_bin path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith "missing baseline %s (run 'bench/main.exe profile' \
                      and commit the result)" path
  in
  match Obs.Pjson.parse_result doc with
  | Error e -> Fmt.failwith "malformed baseline %s: %s" path e
  | Ok v -> (
      match Obs.Pjson.member "benchmarks" v with
      | Some (Obs.Pjson.Arr entries) ->
          List.map
            (fun ev ->
              match Obs.Diff.profile_of_value ev with
              | Ok (p, name, _seed) -> (name, p)
              | Error e ->
                  Fmt.failwith "malformed baseline entry in %s: %s" path e)
            entries
      | _ -> Fmt.failwith "baseline %s has no benchmarks array" path)

let regress_row ~baseline b =
  let name, _total, p_cur = current_profile b in
  let tol = tolerance name in
  match List.assoc_opt name baseline with
  | None ->
      { rg_name = name; rg_tol = tol; rg_status = "missing-baseline";
        rg_diff = None; rg_culprits = [] }
  | Some p_base ->
      let d =
        Obs.Diff.diff ~before_name:(name ^ "@baseline")
          ~after_name:(name ^ "@current") ~before:p_base ~after:p_cur ()
      in
      let budget = tol *. Float.max d.Obs.Diff.d_total_before 1e-12 in
      let cat_over =
        List.exists
          (fun c -> c.Obs.Diff.cd_delta > budget)
          d.Obs.Diff.d_totals
      in
      let status =
        if d.Obs.Diff.d_delta > budget || cat_over then "regression"
        else if d.Obs.Diff.d_delta < -.budget then "improved"
        else "ok"
      in
      let culprits =
        if status <> "regression" then []
        else
          List.filteri (fun i _ -> i < 5)
            (List.filter
               (fun (r : Obs.Diff.row_delta) -> r.Obs.Diff.rd_delta > 0.0)
               (Obs.Diff.movers d))
      in
      { rg_name = name; rg_tol = tol; rg_status = status; rg_diff = Some d;
        rg_culprits = culprits }

let regress_json ~baseline_path rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Fmt.str
       "{\n\"schema\": %s,\n\"version\": %d,\n\"baseline\": %s,\n\
        \"seed\": 42,\n\"status\": %s,\n\"benchmarks\": [\n"
       (Obs.Trace.json_str (Obs.Trace.schema ^ ".bench-regress"))
       Obs.Trace.version
       (Obs.Trace.json_str baseline_path)
       (Obs.Trace.json_str
          (if List.exists
                (fun r ->
                  r.rg_status = "regression"
                  || r.rg_status = "missing-baseline")
                rows
           then "regression"
           else "ok")));
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      let tb, ta, dl =
        match r.rg_diff with
        | Some d ->
            (d.Obs.Diff.d_total_before, d.Obs.Diff.d_total_after,
             d.Obs.Diff.d_delta)
        | None -> (0.0, 0.0, 0.0)
      in
      Buffer.add_string buf
        (Fmt.str
           "{\"name\": %s, \"tolerance\": %.3f, \"status\": %s, \
            \"total_before\": %.9f, \"total_after\": %.9f, \"delta\": \
            %.9f, \"culprits\": ["
           (Obs.Trace.json_str r.rg_name)
           r.rg_tol
           (Obs.Trace.json_str r.rg_status)
           tb ta dl);
      List.iteri
        (fun j (c : Obs.Diff.row_delta) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Fmt.str
               "{\"directive\": %s, \"verdict\": %s, \"delta\": %.9f, \
                \"category\": %s}"
               (Obs.Trace.json_str c.Obs.Diff.rd_directive)
               (Obs.Trace.json_str
                  (Obs.Diff.verdict_name c.Obs.Diff.rd_verdict))
               c.Obs.Diff.rd_delta
               (Obs.Trace.json_str
                  (Option.value ~default:""
                     (Obs.Diff.dominant_cat c)))))
        r.rg_culprits;
      Buffer.add_string buf "]}")
    rows;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* Optimizer side of the sentinel: the committed BENCH_saturate.json's
   per-benchmark measured accepted saving, keyed by name. *)
let saturate_baseline path =
  let doc =
    match open_in_bin path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith
          "missing saturate baseline %s (run 'bench/main.exe saturate' and \
           commit the result)"
          path
  in
  match Obs.Pjson.parse_result doc with
  | Error e -> Fmt.failwith "malformed saturate baseline %s: %s" path e
  | Ok v -> (
      match Obs.Pjson.member "benchmarks" v with
      | Some (Obs.Pjson.Arr entries) ->
          List.map
            (fun ev ->
              match
                ( Option.bind (Obs.Pjson.member "name" ev) Obs.Pjson.str,
                  Option.bind (Obs.Pjson.member "result" ev) (fun r ->
                      Option.bind
                        (Obs.Pjson.member "measured_saved_s" r)
                        Obs.Pjson.num) )
              with
              | Some name, Some saved -> (name, saved)
              | _ ->
                  Fmt.failwith "malformed saturate baseline entry in %s"
                    path)
            entries
      | _ ->
          Fmt.failwith "saturate baseline %s has no benchmarks array" path)

let run_regress ?(baseline = profile_path) ?names ?json ?saturate ppf =
  let bs = select names in
  let base = baseline_profiles baseline in
  Fmt.pf ppf "Regression sentinel: current sweep vs %s (seed 42)@." baseline;
  hr ppf;
  let rows = List.map (regress_row ~baseline:base) bs in
  List.iter
    (fun r ->
      (match r.rg_diff with
      | Some d ->
          Fmt.pf ppf
            "  %-12s base %12.9f s  now %12.9f s  delta %+.9f s  %s (tol \
             %.1f%%)@."
            r.rg_name d.Obs.Diff.d_total_before d.Obs.Diff.d_total_after
            d.Obs.Diff.d_delta r.rg_status (100. *. r.rg_tol)
      | None ->
          Fmt.pf ppf
            "  %-12s missing from baseline (regenerate with \
             'bench/main.exe profile')@."
            r.rg_name);
      List.iter
        (fun (c : Obs.Diff.row_delta) ->
          Fmt.pf ppf "    culprit: [%-9s] %-34s %+.9f s%s@."
            (Obs.Diff.verdict_name c.Obs.Diff.rd_verdict)
            c.Obs.Diff.rd_directive c.Obs.Diff.rd_delta
            (match Obs.Diff.dominant_cat c with
            | Some cat -> "  (" ^ cat ^ ")"
            | None -> ""))
        r.rg_culprits)
    rows;
  (* With --saturate, re-run the optimizer search per benchmark and hold
     its measured accepted saving to the committed baseline under the
     (wider) saturate tolerance — a search that stops finding or stops
     confirming a rewrite is a regression even when the profile totals of
     the unedited program are unchanged. *)
  let sat_bad =
    match saturate with
    | None -> []
    | Some path ->
        hr ppf;
        let sat_base = saturate_baseline path in
        List.filter_map
          (fun (b : Bench_def.t) ->
            let name = b.Bench_def.name in
            let tol = saturate_tolerance name in
            match List.assoc_opt name sat_base with
            | None ->
                Fmt.pf ppf
                  "  %-12s saturate: missing from %s (regenerate with \
                   'bench/main.exe saturate')@."
                  name path;
                Some name
            | Some before ->
                let r =
                  Saturate.run ~name ~outputs:b.Bench_def.outputs (parse b)
                in
                let now = r.Saturate.r_measured_s in
                let budget = tol *. Float.max before 1e-12 in
                let status =
                  if before -. now > budget then "regression"
                  else if now -. before > budget then "improved"
                  else "ok"
                in
                Fmt.pf ppf
                  "  %-12s saturate base %12.9f s  now %12.9f s  delta \
                   %+.9f s  %s (tol %.1f%%)@."
                  name before now (now -. before) status (100. *. tol);
                if status = "regression" then Some name else None)
          bs
  in
  hr ppf;
  (match json with
  | Some path ->
      let oc = open_out path in
      output_string oc (regress_json ~baseline_path:baseline rows);
      close_out oc;
      Fmt.pf ppf "regress report written to %s@." path
  | None -> ());
  let bad =
    List.filter
      (fun r ->
        r.rg_status = "regression" || r.rg_status = "missing-baseline")
      rows
  in
  let improved = List.filter (fun r -> r.rg_status = "improved") rows in
  if bad <> [] || sat_bad <> [] then begin
    if bad <> [] then
      Fmt.pf ppf "REGRESSION: %d/%d benchmark(s) over tolerance@."
        (List.length bad) (List.length rows);
    if sat_bad <> [] then
      Fmt.pf ppf
        "SATURATE REGRESSION: %d benchmark(s) lost accepted savings \
         (%s)@."
        (List.length sat_bad)
        (String.concat ", " sat_bad);
    1
  end
  else begin
    Fmt.pf ppf "regress: %d/%d benchmark(s) within tolerance@."
      (List.length rows - List.length bad)
      (List.length rows);
    if improved <> [] then
      Fmt.pf ppf
        "note: %d benchmark(s) improved beyond tolerance — consider \
         refreshing the baseline with 'bench/main.exe profile'@."
        (List.length improved);
    0
  end

(* ------------------------------------------------------------------ *)
(* Wall-clock tier: real interpreter time, per benchmark and engine    *)
(* ------------------------------------------------------------------ *)

let wall_path = "BENCH_wall.json"

let median_float = function
  | [] -> 0.0
  | xs ->
      let sorted = List.sort compare xs in
      List.nth sorted (List.length sorted / 2)

(* Median-of-[repeats] wall-clock of one translated run.  Only
   [Interp.run] is inside the timer: parse/translate cost is a separate
   (micro-benchmarked) pipeline stage, and the compiled engine pays its
   kernel compilation inside the run — so the comparison charges the
   engine, not the front end. *)
let wall_time ~repeats ~engine tp =
  median_float
    (List.init repeats (fun _ ->
         let t0 = Unix.gettimeofday () in
         ignore (Accrt.Interp.run ~coherence:false ~engine ~seed:42 tp);
         Unix.gettimeofday () -. t0))

let wall_entry ~repeats ~engines (b : Bench_def.t) =
  let prog = parse b in
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  ( b.Bench_def.name,
    List.map (fun e -> (e, wall_time ~repeats ~engine:e tp)) engines )

let wall_speedup times =
  match
    ( List.assoc_opt Accrt.Engine.Tree times,
      List.assoc_opt Accrt.Engine.Compiled times )
  with
  | Some t, Some c when c > 0.0 -> Some (t /. c)
  | _ -> None

let wall_doc ~repeats ~engines entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n\"schema\": \"openarc.obs.bench-wall\",\n\"version\": 1,\n\
     \"seed\": 42,\n";
  Buffer.add_string buf (Fmt.str "\"repeats\": %d,\n" repeats);
  Buffer.add_string buf
    (Fmt.str "\"engines\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun e -> Fmt.str "%S" (Accrt.Engine.to_string e))
             engines)));
  Buffer.add_string buf "\"benchmarks\": [\n";
  List.iteri
    (fun i (name, times) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (Fmt.str "{\"name\": %S" name);
      List.iter
        (fun (e, t) ->
          Buffer.add_string buf
            (Fmt.str ", \"%s_s\": %.6f" (Accrt.Engine.to_string e) t))
        times;
      (match wall_speedup times with
      | Some s -> Buffer.add_string buf (Fmt.str ", \"speedup\": %.2f" s)
      | None -> ());
      Buffer.add_string buf "}")
    entries;
  Buffer.add_string buf "\n],\n";
  let speedups = List.filter_map (fun (_, t) -> wall_speedup t) entries in
  if speedups <> [] then
    Buffer.add_string buf
      (Fmt.str "\"median_speedup\": %.2f\n" (median_float speedups))
  else Buffer.add_string buf "\"median_speedup\": null\n";
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* The wall tier: per-benchmark wall-clock medians for the selected
   engines, the bench-wall JSON report, and (when both engines ran and
   [min_speedup] is set) a gate on the suite's median speedup — the
   wall-smoke CI check.  Returns the exit code. *)
let run_wall ?(json = wall_path) ?names
    ?(engines = [ Accrt.Engine.Tree; Accrt.Engine.Compiled ])
    ?(repeats = 5) ?min_speedup ppf =
  let benches = select names in
  Fmt.pf ppf
    "Interpreter wall-clock (median of %d, seed 42, source variant)@."
    repeats;
  hr ppf;
  let entries = List.map (wall_entry ~repeats ~engines) benches in
  List.iter
    (fun (name, times) ->
      Fmt.pf ppf "  %-12s" name;
      List.iter
        (fun (e, t) ->
          Fmt.pf ppf "  %s %9.6f s" (Accrt.Engine.to_string e) t)
        times;
      (match wall_speedup times with
      | Some s -> Fmt.pf ppf "  %6.2fx" s
      | None -> ());
      Fmt.pf ppf "@.")
    entries;
  let oc = open_out json in
  output_string oc (wall_doc ~repeats ~engines entries);
  close_out oc;
  hr ppf;
  Fmt.pf ppf "wall report written to %s@." json;
  let speedups = List.filter_map (fun (_, t) -> wall_speedup t) entries in
  match (min_speedup, speedups) with
  | None, _ | _, [] -> 0
  | Some need, _ ->
      let got = median_float speedups in
      if got >= need then begin
        Fmt.pf ppf "wall: median speedup %.2fx (>= %.2fx required)@." got
          need;
        0
      end
      else begin
        Fmt.pf ppf
          "WALL REGRESSION: median speedup %.2fx below required %.2fx@."
          got need;
        1
      end

(* ------------------------------------------------------------------ *)
(* Scale tier: simulated-time speedup across device-set sizes          *)
(* ------------------------------------------------------------------ *)

(* Each benchmark runs at 1/2/4/8 simulated devices (seed 42, coherence
   off) and reports total simulated time plus the speedup over the
   single-device run.  The simulator is deterministic, so the canonical
   JSON is byte-stable and the committed BENCH_scale.json doubles as a
   regression baseline: a scheduling change that makes adding devices
   slow a benchmark down shows up as a diff and as a monotonicity
   failure. *)

let scale_path = "BENCH_scale.json"

let scale_counts = [ 1; 2; 4; 8 ]

let scale_run ~devices tp =
  let o = Accrt.Interp.run ~coherence:false ~seed:42 ~devices tp in
  (Gpusim.Metrics.total_time (Accrt.Interp.metrics o), o)

(* Per-ordinal cost attribution at the headline fan-out (the speedup
   column's denominator): each member's accumulated compute and transfer
   seconds, plus its share of the modeled reduction-merge cost (a launch's
   merge is attributed once to every member that executed a shard of it,
   mirroring the per-member Merge spans of the trace). *)
let scale_breakdown_devices = 4

let scale_breakdown (o : Accrt.Interp.outcome) =
  let mt = Gpusim.Device_set.member_times o.Accrt.Interp.devset in
  let merge = Array.make (Array.length mt) 0.0 in
  (match o.Accrt.Interp.imbalance with
  | None -> ()
  | Some il ->
      List.iter
        (fun (l : Obs.Imbalance.launch) ->
          if l.Obs.Imbalance.l_merge > 0.0 then begin
            let seen = Array.make (Array.length mt) false in
            Array.iter
              (fun (sh : Obs.Imbalance.shard) ->
                let d = sh.Obs.Imbalance.sh_dev in
                if d >= 0 && d < Array.length seen && not seen.(d) then begin
                  seen.(d) <- true;
                  merge.(d) <- merge.(d) +. l.Obs.Imbalance.l_merge
                end)
              l.Obs.Imbalance.l_shards
          end)
        (Obs.Imbalance.launches il));
  Array.to_list
    (Array.mapi (fun d (c, x) -> (d, c, x, merge.(d))) mt)

let scale_entry (b : Bench_def.t) =
  let prog = parse b in
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let breakdown = ref [] in
  let times =
    List.map
      (fun n ->
        let t, o = scale_run ~devices:n tp in
        if n = scale_breakdown_devices then breakdown := scale_breakdown o;
        (n, t))
      scale_counts
  in
  (b.Bench_def.name, times, !breakdown)

let scale_speedup times n =
  match (List.assoc_opt 1 times, List.assoc_opt n times) with
  | Some t1, Some tn when tn > 0.0 -> t1 /. tn
  | _ -> 0.0

(* Monotone non-degrading through 4 devices: adding members never grows
   the simulated time (exact — the simulator is deterministic; the tiny
   epsilon only absorbs decimal printing). *)
let scale_monotone times =
  let t n = List.assoc n times in
  t 2 <= t 1 +. 1e-12 && t 4 <= t 2 +. 1e-12

let scale_entry_json (name, times, breakdown) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Fmt.str "{\"name\": %S" name);
  List.iter
    (fun (n, t) -> Buffer.add_string buf (Fmt.str ", \"t%d_s\": %.9f" n t))
    times;
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Fmt.str ", \"speedup%d\": %.4f" n (scale_speedup times n)))
    (List.filter (fun n -> n > 1) scale_counts);
  Buffer.add_string buf
    (Fmt.str ", \"per_device%d\": [" scale_breakdown_devices);
  List.iteri
    (fun i (d, c, x, m) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Fmt.str
           "{\"dev\": %d, \"compute_s\": %.9f, \"transfer_s\": %.9f, \
            \"merge_s\": %.9f}"
           d c x m))
    breakdown;
  Buffer.add_string buf
    (Fmt.str "], \"monotone_1_4\": %b}" (scale_monotone times));
  Buffer.contents buf

let scale_doc entries =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n\"schema\": \"openarc.obs.bench-scale\",\n\"version\": 1,\n\
     \"seed\": 42,\n";
  Buffer.add_string buf
    (Fmt.str "\"devices\": [%s],\n"
       (String.concat ", " (List.map string_of_int scale_counts)));
  Buffer.add_string buf "\"benchmarks\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (scale_entry_json e))
    entries;
  Buffer.add_string buf "\n],\n";
  Buffer.add_string buf
    (Fmt.str "\"monotone_1_4\": %d\n}\n"
       (List.length
          (List.filter (fun (_, times, _) -> scale_monotone times) entries)));
  Buffer.contents buf

(* Transfer-bound benchmarks cannot speed up from extra devices (the
   broadcast upload costs what one device's upload costs), so the gate
   asks most — not all — of the suite to scale monotonically. *)
let scale_min_monotone = 8

let run_scale ?(json = scale_path) ppf =
  Fmt.pf ppf
    "Device-set scaling (simulated time, seed 42, source variant)@.";
  hr ppf;
  Fmt.pf ppf "  %-12s" "";
  List.iter (fun n -> Fmt.pf ppf " %8s" (Fmt.str "%ddev" n)) scale_counts;
  Fmt.pf ppf "  speedup 1->4@.";
  let entries = List.map scale_entry benchmarks in
  List.iter
    (fun (name, times, breakdown) ->
      Fmt.pf ppf "  %-12s" name;
      List.iter (fun (_, t) -> Fmt.pf ppf " %8.6f" t) times;
      Fmt.pf ppf "  %5.2fx %s@." (scale_speedup times 4)
        (if scale_monotone times then "" else "[degrades]");
      Fmt.pf ppf "  %-12s @%ddev" "" scale_breakdown_devices;
      List.iter
        (fun (d, c, x, m) ->
          Fmt.pf ppf "  [%d] c=%.6f x=%.6f m=%.6f" d c x m)
        breakdown;
      Fmt.pf ppf "@.")
    entries;
  let oc = open_out json in
  output_string oc (scale_doc entries);
  close_out oc;
  hr ppf;
  Fmt.pf ppf "scale report written to %s@." json;
  let mono =
    List.length (List.filter (fun (_, t, _) -> scale_monotone t) entries)
  in
  if mono >= scale_min_monotone then begin
    Fmt.pf ppf
      "scale: %d/%d benchmark(s) monotone non-degrading through 4 \
       devices (>= %d required)@."
      mono (List.length entries) scale_min_monotone;
    0
  end
  else begin
    Fmt.pf ppf
      "SCALE REGRESSION: only %d/%d benchmark(s) monotone non-degrading \
       through 4 devices (>= %d required)@."
      mono (List.length entries) scale_min_monotone;
    1
  end

(* Scale smoke for CI: the whole document must regenerate byte-for-byte
   against the committed baseline (which also re-checks the monotonicity
   counts it records), and one seeded device-loss cell must fail over to
   the surviving member and still produce verified-correct outputs. *)
let run_scale_smoke ppf =
  let committed =
    match open_in_bin scale_path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith "missing %s (run 'bench/main.exe scale' and commit \
                      the result)" scale_path
  in
  let entries = List.map scale_entry benchmarks in
  let regenerated = scale_doc entries in
  if regenerated <> committed then
    Fmt.failwith
      "scale smoke failed: %s is stale; regenerate with 'bench/main.exe \
       scale' and inspect the diff"
      scale_path;
  Fmt.pf ppf "scale smoke: %d benchmarks byte-stable against %s@."
    (List.length entries) scale_path;
  (* Failover cell: kill member 1 of a 2-device set at the first
     kernel's launch gate; the fallback-less retry policy must re-execute
     the lost shard on the survivor and verify it against the sequential
     reference. *)
  let b = List.find (fun b -> b.Bench_def.name = "JACOBI") benchmarks in
  let prog = parse b in
  let reference = (Accrt.Eval.run_reference prog).Accrt.Eval.env in
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let target = tp.Codegen.Tprog.kernels.(0).Codegen.Tprog.k_name in
  let plan =
    Gpusim.Fault_plan.create ~seed:42
      [ Gpusim.Fault_plan.mk_rule ~target ~count:1 ~dev:1
          Gpusim.Fault_plan.Device_lost ]
  in
  let o =
    Accrt.Interp.run ~coherence:false ~seed:42 ~devices:2 ~plan
      ~resilience:Accrt.Resilience.retry tp
  in
  let st = o.Accrt.Interp.resilience in
  let correct =
    Openarc_core.Session.outputs_match ~outputs:b.Bench_def.outputs
      ~reference o
  in
  if
    st.Accrt.Resilience.devices_lost = 1
    && st.Accrt.Resilience.failovers >= 1
    && st.Accrt.Resilience.verified >= 1
    && st.Accrt.Resilience.unrecovered = 0
    && correct
  then
    Fmt.pf ppf
      "scale smoke: device-loss failover cell ok (%d shard(s) \
       re-executed, %d verified, outputs correct)@."
      st.Accrt.Resilience.failovers st.Accrt.Resilience.verified
  else
    Fmt.failwith
      "scale smoke failed: device-loss failover cell (lost=%d failovers=%d \
       verified=%d unrecovered=%d correct=%b)"
      st.Accrt.Resilience.devices_lost st.Accrt.Resilience.failovers
      st.Accrt.Resilience.verified st.Accrt.Resilience.unrecovered correct

(* ------------------------------------------------------------------ *)
(* Imbalance tier: shard-cost attribution and schedule verdicts        *)
(* ------------------------------------------------------------------ *)

(* Every benchmark runs at 4 devices under the default block schedule
   (seed 42, coherence off); the shard log's analyzer re-costs the
   recorded iteration weights under the cyclic split and issues a
   keep/switch verdict.  For every "switch" the benchmark re-runs under
   the recommendation and both measured totals are recorded — shard
   launches are priced without jitter, so the measured delta reproduces
   the analyzer's noise-free model exactly and the canonical JSON is
   byte-stable (BENCH_imbalance.json is the committed baseline). *)

let imbalance_path = "BENCH_imbalance.json"

let imbalance_devices = 4

let imbalance_entry (b : Bench_def.t) =
  let prog = parse b in
  let env = Minic.Typecheck.check prog in
  let tp = Codegen.Translate.translate env prog in
  let run schedule =
    let o =
      Accrt.Interp.run ~coherence:false ~seed:42
        ~devices:imbalance_devices ~schedule tp
    in
    ( Gpusim.Metrics.total_time (Accrt.Interp.metrics o),
      o.Accrt.Interp.imbalance )
  in
  let t_block, il = run Gpusim.Device_set.Block in
  let il =
    match il with
    | Some il -> il
    | None -> Fmt.failwith "no shard log for %s" b.Bench_def.name
  in
  let a = Obs.Imbalance.analyze il in
  let switched =
    if a.Obs.Imbalance.a_recommended <> "block" then begin
      let t_alt, _ = run Gpusim.Device_set.Cyclic in
      Some (t_alt, t_alt < t_block)
    end
    else None
  in
  (b.Bench_def.name, t_block, a, switched)

let imbalance_entry_json (name, t_block, (a : Obs.Imbalance.analysis),
                          switched) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Fmt.str
       "{\"name\": %S, \"measured_block_s\": %.9f, \"recommended\": %S, \
        \"gain\": %.4f"
       name t_block a.Obs.Imbalance.a_recommended a.Obs.Imbalance.a_gain);
  (match switched with
  | Some (t_alt, improved) ->
      Buffer.add_string buf
        (Fmt.str ", \"measured_%s_s\": %.9f, \"improved\": %b"
           a.Obs.Imbalance.a_recommended t_alt improved)
  | None -> ());
  Buffer.add_string buf
    (Fmt.str ", \"analysis\": %s}"
       (String.trim (Obs.Imbalance.to_json ~name ~seed:42 a)));
  Buffer.contents buf

let imbalance_doc entries =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf
    (Fmt.str
       "{\n\"schema\": \"openarc.obs.bench-imbalance\",\n\"version\": 1,\n\
        \"seed\": 42,\n\"devices\": %d,\n\"benchmarks\": [\n"
       imbalance_devices);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (imbalance_entry_json e))
    entries;
  let switched =
    List.length (List.filter (fun (_, _, _, s) -> s <> None) entries)
  in
  let improved =
    List.length
      (List.filter
         (fun (_, _, _, s) ->
           match s with Some (_, true) -> true | _ -> false)
         entries)
  in
  Buffer.add_string buf
    (Fmt.str "\n],\n\"switched\": %d,\n\"improved\": %d\n}\n" switched
       improved);
  Buffer.contents buf

(* The gate of this tier: at least one benchmark's verdict must differ
   from the default schedule AND the re-run under the recommendation
   must measure faster — the analyzer's advice has to be actionable, not
   just plausible. *)
let run_imbalance ?(json = imbalance_path) ppf =
  Fmt.pf ppf
    "Shard-imbalance analysis (seed 42, %d devices, block default)@."
    imbalance_devices;
  hr ppf;
  let entries = List.map imbalance_entry benchmarks in
  List.iter
    (fun (name, t_block, (a : Obs.Imbalance.analysis), switched) ->
      match switched with
      | None -> Fmt.pf ppf "  %-12s %12.9f s  keep block@." name t_block
      | Some (t_alt, improved) ->
          Fmt.pf ppf "  %-12s %12.9f s  switch -> %s %12.9f s  %s@." name
            t_block a.Obs.Imbalance.a_recommended t_alt
            (if improved then "[improved]" else "[NOT improved]"))
    entries;
  let oc = open_out json in
  output_string oc (imbalance_doc entries);
  close_out oc;
  hr ppf;
  Fmt.pf ppf "imbalance report written to %s@." json;
  let improved =
    List.filter
      (fun (_, _, _, s) -> match s with Some (_, true) -> true | _ -> false)
      entries
  in
  if improved <> [] then begin
    Fmt.pf ppf
      "imbalance: %d benchmark(s) with a measured-faster schedule switch \
       (>= 1 required)@."
      (List.length improved);
    0
  end
  else begin
    Fmt.pf ppf
      "IMBALANCE REGRESSION: no benchmark with a measured-faster \
       schedule switch (>= 1 required)@.";
    1
  end

(* Imbalance smoke for CI: regenerate a fixed 3-benchmark subset — one
   of which must be a switch verdict — and require each entry verbatim
   in the committed baseline. *)
let run_imbalance_smoke ppf =
  let committed =
    match open_in_bin imbalance_path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith
          "missing %s (run 'bench/main.exe imbalance' and commit the \
           result)"
          imbalance_path
  in
  let names = [ "JACOBI"; "BFS"; "NW" ] in
  let entries =
    List.map
      (fun n ->
        imbalance_entry
          (List.find (fun b -> b.Bench_def.name = n) benchmarks))
      names
  in
  let ok =
    List.for_all
      (fun ((name, t_block, _, _) as e) ->
        if contains ~needle:(imbalance_entry_json e) committed then begin
          Fmt.pf ppf "  %-12s %12.9f s  matches baseline@." name t_block;
          true
        end
        else begin
          Fmt.pf ppf "  %-12s MISMATCH against %s@." name imbalance_path;
          false
        end)
      entries
  in
  if not ok then
    Fmt.failwith
      "imbalance smoke failed: regenerate with 'bench/main.exe imbalance' \
       and inspect the diff";
  let switch = List.exists (fun (_, _, _, s) -> s <> None) entries in
  if not switch then
    Fmt.failwith
      "imbalance smoke failed: no switch verdict in the %s subset"
      (String.concat "," names);
  Fmt.pf ppf
    "imbalance smoke: %d/%d byte-stable, switch verdict present@."
    (List.length names) (List.length names)

(* ------------------------------------------------------------------ *)
(* Memtrace tier: data-movement ledger and counterfactual savings      *)
(* ------------------------------------------------------------------ *)

(* Every benchmark's source (naive) variant runs once, instrumented with
   the coherence runtime and a data-movement ledger attached (seed 42,
   one device, block schedule).  Each entry is the ledger's canonical
   memtrace JSON: per-site cause attribution, redundancy/hoistability
   counts, allocation watermarks, and the counterfactual rewrite
   verdicts.  Everything is deterministic for the fixed seed, so the
   committed BENCH_memtrace.json is a byte-for-byte baseline.

   The tier's gate is the confirmation record: the analyzer's predicted
   saving for the naive BACKPROP must be corroborated by the measured
   Mem-Transfer delta between its naive and manually optimized variants
   (the optimized variant applies exactly the hoist/present rewrites the
   ledger recommends). *)

let memtrace_path = "BENCH_memtrace.json"

let memtrace_entry (b : Bench_def.t) =
  let a, _ = ledger_run ~name:b.Bench_def.name (parse b) in
  (b.Bench_def.name, a)

let memtrace_entry_json (name, a) =
  String.trim (Obs.Ledger.to_json ~name ~seed:42 a)

(* Measured Mem-Transfer saving of the optimized variant over the naive
   one (positive = the optimized variant moves less), via the same
   profile-diff machinery the CLI's [diff-profile] exposes. *)
let memtrace_measured_saving (b : Bench_def.t) =
  let profile_of prog =
    let env = Minic.Typecheck.check prog in
    let tp = Codegen.Translate.translate env prog in
    let tr = Obs.Trace.create () in
    ignore (Accrt.Interp.run ~coherence:false ~seed:42 ~obs:tr tp);
    Obs.Profile.of_trace ~categories:profile_categories tr
  in
  let d =
    Obs.Diff.diff
      ~before_name:b.Bench_def.name
      ~after_name:(b.Bench_def.name ^ "-opt")
      ~before:(profile_of (parse b))
      ~after:(profile_of (parse_opt b))
      ()
  in
  let mem_cat = Gpusim.Metrics.category_name Gpusim.Metrics.Mem_transfer in
  match
    List.find_opt
      (fun c -> c.Obs.Diff.cd_cat = mem_cat)
      d.Obs.Diff.d_totals
  with
  | Some c -> -.c.Obs.Diff.cd_delta
  | None -> 0.0

let memtrace_confirm_name = "BACKPROP"

let memtrace_confirmation entries =
  let a =
    match List.assoc_opt memtrace_confirm_name entries with
    | Some a -> a
    | None -> Fmt.failwith "no memtrace entry for %s" memtrace_confirm_name
  in
  let b =
    List.find
      (fun b -> b.Bench_def.name = memtrace_confirm_name)
      benchmarks
  in
  let predicted = a.Obs.Ledger.a_saved_s in
  let measured = memtrace_measured_saving b in
  (* The prediction is a noise-free re-costing; the measurement carries
     per-transfer PCIe jitter and whatever else the hand-optimized
     variant changed, so corroboration is a factor band, not equality. *)
  let confirmed =
    predicted > 0.0 && measured > 0.0
    && measured >= 0.25 *. predicted
    && measured <= 4.0 *. predicted
  in
  (predicted, measured, confirmed)

let memtrace_confirmation_json (predicted, measured, confirmed) =
  Fmt.str
    "{\"name\": %S, \"predicted_saved_s\": %.9f, \"measured_saved_s\": \
     %.9f, \"confirmed\": %b}"
    memtrace_confirm_name predicted measured confirmed

let memtrace_doc entries confirmation =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf
    "{\n\"schema\": \"openarc.obs.bench-memtrace\",\n\"version\": 1,\n\
     \"seed\": 42,\n\"devices\": 1,\n\"benchmarks\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (memtrace_entry_json e))
    entries;
  let wasted =
    List.fold_left
      (fun acc (_, a) -> acc + a.Obs.Ledger.a_wasted_bytes)
      0 entries
  in
  Buffer.add_string buf
    (Fmt.str "\n],\n\"wasted_bytes\": %d,\n\"confirmation\": %s\n}\n"
       wasted
       (memtrace_confirmation_json confirmation));
  Buffer.contents buf

(* The gate of this tier: at least the designated benchmark's predicted
   counterfactual saving must be measured on its hand-optimized variant —
   the ledger's advice has to be actionable, not just plausible. *)
let run_memtrace ?(json = memtrace_path) ppf =
  Fmt.pf ppf
    "Data-movement ledger sweep (seed 42, 1 device, source variant, \
     instrumented)@.";
  hr ppf;
  let entries = List.map memtrace_entry benchmarks in
  List.iter
    (fun (name, a) ->
      let apply =
        List.length
          (List.filter
             (fun s -> s.Obs.Ledger.s_verdict = "apply")
             a.Obs.Ledger.a_sites)
      in
      Fmt.pf ppf
        "  %-12s %8d B h2d %8d B d2h %8d wasted  %d apply  conservation \
         exact@."
        name a.Obs.Ledger.a_h2d_bytes a.Obs.Ledger.a_d2h_bytes
        a.Obs.Ledger.a_wasted_bytes apply)
    entries;
  let ((predicted, measured, confirmed) as confirmation) =
    memtrace_confirmation entries
  in
  let oc = open_out json in
  output_string oc (memtrace_doc entries confirmation);
  close_out oc;
  hr ppf;
  Fmt.pf ppf "memtrace baseline written to %s@." json;
  Fmt.pf ppf
    "counterfactual confirmation (%s): predicted %.9f s, measured %.9f s \
     on the optimized variant@."
    memtrace_confirm_name predicted measured;
  if confirmed then begin
    Fmt.pf ppf "memtrace: prediction confirmed by measurement@.";
    0
  end
  else begin
    Fmt.pf ppf
      "MEMTRACE REGRESSION: predicted saving not corroborated by the \
       measured Mem-Transfer delta@.";
    1
  end

(* Memtrace smoke for CI: regenerate a fixed 3-benchmark subset and
   require each entry verbatim in the committed baseline, plus a
   confirmed counterfactual for the designated benchmark. *)
let run_memtrace_smoke ppf =
  let committed =
    match open_in_bin memtrace_path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith
          "missing %s (run 'bench/main.exe memtrace' and commit the \
           result)"
          memtrace_path
  in
  let names = [ "BACKPROP"; "JACOBI"; "NW" ] in
  let entries =
    List.map
      (fun n ->
        memtrace_entry
          (List.find (fun b -> b.Bench_def.name = n) benchmarks))
      names
  in
  let ok =
    List.for_all
      (fun ((name, a) as e) ->
        if contains ~needle:(memtrace_entry_json e) committed then begin
          Fmt.pf ppf "  %-12s %8d wasted byte(s)  matches baseline@." name
            a.Obs.Ledger.a_wasted_bytes;
          true
        end
        else begin
          Fmt.pf ppf "  %-12s MISMATCH against %s@." name memtrace_path;
          false
        end)
      entries
  in
  if not ok then
    Fmt.failwith
      "memtrace smoke failed: regenerate with 'bench/main.exe memtrace' \
       and inspect the diff";
  let _, _, confirmed = memtrace_confirmation entries in
  if not confirmed then
    Fmt.failwith
      "memtrace smoke failed: %s counterfactual not confirmed by the \
       optimized variant's measured saving"
      memtrace_confirm_name;
  Fmt.pf ppf
    "memtrace smoke: %d/%d byte-stable, counterfactual confirmed@."
    (List.length names) (List.length names)

(* ------------------------------------------------------------------ *)
(* Saturate tier: search-based automatic directive optimization        *)
(* ------------------------------------------------------------------ *)

(* Every naive benchmark goes through the full saturate search — greedy
   over the ledger's hoist/present/merge verdicts plus structural fusion,
   each accepted rewrite validated by kernel verification (symbolic tier
   first), bit-identical outputs under both engines across 1/2/4-device
   sets, and a measured diff-profile confirmation within 0.25-4x of the
   ledger's prediction.  Everything is deterministic for the fixed seed,
   so the committed BENCH_saturate.json is a byte-for-byte baseline; the
   headline is the suite-wide simulated-time reduction of the patched
   programs over the naive ones. *)

let saturate_path = "BENCH_saturate.json"

let saturate_entry (b : Bench_def.t) =
  let r =
    Saturate.run ~name:b.Bench_def.name ~outputs:b.Bench_def.outputs
      (parse b)
  in
  (b.Bench_def.name, r)

(* One benchmark's document entry: the search report plus the before/after
   diff-profile table (the same machinery the CLI's [diff-profile]
   exposes, naive vs saturated). *)
let saturate_entry_json (name, (r : Saturate.t)) =
  let d =
    Obs.Diff.diff ~before_name:name ~after_name:(name ^ "-saturated")
      ~before:r.Saturate.r_before ~after:r.Saturate.r_after ()
  in
  Fmt.str "{\"name\": %s,\n\"result\": %s,\n\"diff\": %s}"
    (Obs.Trace.json_str name)
    (String.trim (Saturate.to_json r))
    (String.trim (Obs.Diff.to_json d))

let saturate_reduction (r : Saturate.t) =
  if r.Saturate.r_total_before <= 0.0 then 0.0
  else
    (r.Saturate.r_total_before -. r.Saturate.r_total_after)
    /. r.Saturate.r_total_before

(* Every accepted step must carry an in-band confirmation — the search
   enforces this before accepting, so a violation here is a harness bug,
   but the tier re-checks it as its 0.25-4x gate (same band as the
   memtrace tier's counterfactual). *)
let saturate_confirmed (r : Saturate.t) =
  List.for_all
    (fun s ->
      (not s.Saturate.st_accepted)
      || (s.Saturate.st_predicted_s > 0.0
         && s.Saturate.st_measured_s >= 0.25 *. s.Saturate.st_predicted_s
         && s.Saturate.st_measured_s <= 4.0 *. s.Saturate.st_predicted_s))
    r.Saturate.r_steps

let saturate_doc entries =
  let buf = Buffer.create 131072 in
  Buffer.add_string buf
    "{\n\"schema\": \"openarc.obs.bench-saturate\",\n\"version\": 1,\n\
     \"seed\": 42,\n\"check_devices\": [1, 2, 4],\n\"benchmarks\": [\n";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf (saturate_entry_json e))
    entries;
  let total f = List.fold_left (fun acc (_, r) -> acc +. f r) 0.0 entries in
  let tb = total (fun r -> r.Saturate.r_total_before) in
  let ta = total (fun r -> r.Saturate.r_total_after) in
  let accepted_benchmarks =
    List.length
      (List.filter (fun (_, r) -> r.Saturate.r_accepted >= 1) entries)
  in
  let accepted_rewrites =
    List.fold_left (fun acc (_, r) -> acc + r.Saturate.r_accepted) 0 entries
  in
  Buffer.add_string buf
    (Fmt.str
       "\n],\n\"accepted_benchmarks\": %d,\n\"accepted_rewrites\": %d,\n\
        \"total_before_s\": %.9f,\n\"total_after_s\": %.9f,\n\
        \"suite_reduction\": %.9f,\n\"median_reduction\": %.9f\n}\n"
       accepted_benchmarks accepted_rewrites tb ta
       (if tb <= 0.0 then 0.0 else (tb -. ta) /. tb)
       (median_float (List.map (fun (_, r) -> saturate_reduction r) entries)));
  Buffer.contents buf

let run_saturate ?(json = saturate_path) ppf =
  Fmt.pf ppf
    "Saturate sweep (seed 42, greedy search, 1/2/4-device validation, \
     both engines)@.";
  hr ppf;
  let entries = List.map saturate_entry benchmarks in
  List.iter
    (fun (name, r) ->
      Fmt.pf ppf
        "  %-12s %2d step(s) %2d accepted  %12.9f s -> %12.9f s  \
         (%5.1f%%)  %d store hit(s)@."
        name
        (List.length r.Saturate.r_steps)
        r.Saturate.r_accepted r.Saturate.r_total_before
        r.Saturate.r_total_after
        (100.0 *. saturate_reduction r)
        r.Saturate.r_compile_hits)
    entries;
  let oc = open_out json in
  output_string oc (saturate_doc entries);
  close_out oc;
  hr ppf;
  let tb =
    List.fold_left (fun a (_, r) -> a +. r.Saturate.r_total_before) 0.0
      entries
  in
  let ta =
    List.fold_left (fun a (_, r) -> a +. r.Saturate.r_total_after) 0.0
      entries
  in
  let accepted_benchmarks =
    List.length
      (List.filter (fun (_, r) -> r.Saturate.r_accepted >= 1) entries)
  in
  Fmt.pf ppf "saturate baseline written to %s@." json;
  Fmt.pf ppf
    "suite-wide simulated time: %.9f s -> %.9f s (%.1f%% reduction); \
     median per-benchmark reduction %.1f%%@."
    tb ta
    (if tb <= 0.0 then 0.0 else 100.0 *. (tb -. ta) /. tb)
    (100.0
    *. median_float (List.map (fun (_, r) -> saturate_reduction r) entries));
  let unconfirmed =
    List.filter (fun (_, r) -> not (saturate_confirmed r)) entries
  in
  if unconfirmed <> [] then begin
    Fmt.pf ppf
      "SATURATE REGRESSION: accepted rewrite(s) outside the 0.25-4x \
       confirmation band on %s@."
      (String.concat ", " (List.map fst unconfirmed));
    1
  end
  else if accepted_benchmarks < 6 then begin
    Fmt.pf ppf
      "SATURATE REGRESSION: only %d/%d benchmark(s) accepted a material \
       rewrite (need >= 6)@."
      accepted_benchmarks (List.length entries);
    1
  end
  else begin
    Fmt.pf ppf
      "saturate: %d/%d benchmark(s) accepted material rewrites, every \
       prediction confirmed by measurement@."
      accepted_benchmarks (List.length entries);
    0
  end

(* Saturate smoke for CI: regenerate a fixed 2-benchmark subset, require
   each entry verbatim in the committed baseline, and require BACKPROP's
   search to accept its hoist — the canonical rewrite of the paper's
   motivating example. *)
let run_saturate_smoke ppf =
  let committed =
    match open_in_bin saturate_path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith
          "missing %s (run 'bench/main.exe saturate' and commit the \
           result)"
          saturate_path
  in
  let names = [ "BACKPROP"; "SPMUL" ] in
  let entries =
    List.map
      (fun n ->
        saturate_entry
          (List.find (fun b -> b.Bench_def.name = n) benchmarks))
      names
  in
  let ok =
    List.for_all
      (fun ((name, r) as e) ->
        if contains ~needle:(saturate_entry_json e) committed then begin
          Fmt.pf ppf "  %-12s %d accepted rewrite(s)  matches baseline@."
            name r.Saturate.r_accepted;
          true
        end
        else begin
          Fmt.pf ppf "  %-12s MISMATCH against %s@." name saturate_path;
          false
        end)
      entries
  in
  if not ok then
    Fmt.failwith
      "saturate smoke failed: regenerate with 'bench/main.exe saturate' \
       and inspect the diff";
  let backprop = List.assoc "BACKPROP" entries in
  let hoisted =
    List.exists
      (fun s -> s.Saturate.st_accepted && s.Saturate.st_kind = Saturate.Hoist)
      backprop.Saturate.r_steps
  in
  if not hoisted then
    Fmt.failwith
      "saturate smoke failed: BACKPROP's search no longer accepts its \
       hoist";
  Fmt.pf ppf
    "saturate smoke: %d/%d byte-stable, BACKPROP hoist accepted@."
    (List.length names) (List.length names)

(* ------------------------------------------------------------------ *)
(* Symbolic-equivalence sweep (tier-0 coverage across the suite)       *)
(* ------------------------------------------------------------------ *)

(* For every benchmark, run the symbolic checker over both the faithful
   build and the Table II fault build (clauses stripped, recognition
   off).  The canonical JSON is fully deterministic — verdict text
   included — so the committed BENCH_symeq.json is a byte-for-byte
   coverage baseline: a fragment regression (a kernel silently dropping
   from proved to unknown) shows up as a diff. *)

let symeq_path = "BENCH_symeq.json"

let symeq_entry (b : Bench_def.t) =
  let default = Symeq.Engine.check_program (parse b) in
  let fault =
    Symeq.Engine.check_program ~opts:Codegen.Options.fault_injection
      (Openarc_core.Faults.strip_parallelism_clauses (parse b))
  in
  (default, fault)

let symeq_doc entries =
  let bench_json ((b : Bench_def.t), (default : Symeq.Engine.t), fault) =
    Fmt.str
      "{\"name\": %s, \"fully_proved\": %b, \"default\": %s, \"fault\": %s}"
      (Obs.Trace.json_str b.name)
      (default.Symeq.Engine.proved = List.length default.Symeq.Engine.kernels)
      (Symeq.Report.to_json { Symeq.Report.program = b.name; result = default })
      (Symeq.Report.to_json
         { Symeq.Report.program = b.name ^ "-fault"; result = fault })
  in
  let total f = List.fold_left (fun acc (_, d, _) -> acc + f d) 0 entries in
  let fully =
    List.length
      (List.filter
         (fun (_, (d : Symeq.Engine.t), _) ->
           d.Symeq.Engine.proved = List.length d.Symeq.Engine.kernels)
         entries)
  in
  let fault_disproved =
    List.fold_left
      (fun acc (_, _, (f : Symeq.Engine.t)) -> acc + f.Symeq.Engine.disproved)
      0 entries
  in
  Fmt.str
    "{\"schema\": \"openarc.obs.symeq-sweep\", \"version\": 1, \
     \"benchmarks\": [%s], \"totals\": {\"benchmarks\": %d, \
     \"fully_proved\": %d, \"kernels\": %d, \"proved\": %d, \
     \"disproved\": %d, \"unknown\": %d, \"fault_disproved\": %d}}\n"
    (String.concat ", " (List.map bench_json entries))
    (List.length entries) fully
    (total (fun d -> List.length d.Symeq.Engine.kernels))
    (total (fun d -> d.Symeq.Engine.proved))
    (total (fun d -> d.Symeq.Engine.disproved))
    (total (fun d -> d.Symeq.Engine.unknown))
    fault_disproved

let run_symeq ?(json = symeq_path) ppf =
  Fmt.pf ppf "Symbolic equivalence sweep (tier-0, affine fragment)@.";
  hr ppf;
  Fmt.pf ppf "%-12s %28s %28s@." "" "default build P/D/U"
    "fault build P/D/U";
  let entries =
    List.map
      (fun (b : Bench_def.t) ->
        let default, fault = symeq_entry b in
        let pdu (r : Symeq.Engine.t) =
          Fmt.str "%d/%d/%d" r.Symeq.Engine.proved r.Symeq.Engine.disproved
            r.Symeq.Engine.unknown
        in
        Fmt.pf ppf "%-12s %28s %28s%s@." b.name (pdu default) (pdu fault)
          (if default.Symeq.Engine.proved
              = List.length default.Symeq.Engine.kernels
           then "  [all proved]"
           else "");
        (b, default, fault))
      benchmarks
  in
  let doc = symeq_doc entries in
  let oc = open_out json in
  output_string oc doc;
  close_out oc;
  hr ppf;
  Fmt.pf ppf "symbolic sweep written to %s@." json;
  Fmt.pf ppf
    "(a proved kernel skips the numeric comparison tier; the fault build \
     reproduces Table II's clause-stripping, where every active fault \
     must be disproved)@."

(* Byte-stability gate for CI: regenerate the whole document and require
   it to match the committed baseline exactly. *)
let run_symeq_smoke ppf =
  let committed =
    match open_in_bin symeq_path with
    | ic ->
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | exception Sys_error _ ->
        Fmt.failwith "missing %s (run 'bench/main.exe symeq' and commit \
                      the result)" symeq_path
  in
  let entries =
    List.map
      (fun (b : Bench_def.t) ->
        let default, fault = symeq_entry b in
        (b, default, fault))
      benchmarks
  in
  let regenerated = symeq_doc entries in
  if regenerated = committed then
    Fmt.pf ppf "symeq smoke: %d benchmarks byte-stable against %s@."
      (List.length entries) symeq_path
  else
    Fmt.failwith
      "symeq smoke failed: regenerate with 'bench/main.exe symeq' and \
       inspect the diff"
