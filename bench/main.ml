(** Benchmark driver: regenerates every table and figure of the paper
    (Table I-III, Figures 1, 3, 4, plus the design ablations), then runs a
    Bechamel micro-benchmark suite over the compiler pipeline stages.

    Usage: [main.exe [table1|fig1|table2|fig3|table3|fig4|ablation|granularity|sweep|faults|profile|profile-smoke|micro|all]]
    With no argument everything runs. *)

let ppf = Fmt.stdout

(* -------- Bechamel micro-benchmarks: one per experiment's machinery ---- *)

let jacobi_src = Suite.Jacobi.bench.Suite.Bench_def.source

let micro_tests () =
  let open Bechamel in
  let parse () = ignore (Minic.Parser.parse_string jacobi_src) in
  let translate =
    let prog = Minic.Parser.parse_string jacobi_src in
    let env = Minic.Typecheck.check prog in
    fun () -> ignore (Codegen.Translate.translate env prog)
  in
  let instrument =
    let prog = Minic.Parser.parse_string jacobi_src in
    let env = Minic.Typecheck.check prog in
    let tp = Codegen.Translate.translate env prog in
    fun () -> ignore (Codegen.Checkgen.instrument tp)
  in
  let execute =
    let prog = Minic.Parser.parse_string jacobi_src in
    let env = Minic.Typecheck.check prog in
    let tp = Codegen.Translate.translate env prog in
    fun () -> ignore (Accrt.Interp.run ~coherence:false tp)
  in
  let verify =
    let prog = Minic.Parser.parse_string jacobi_src in
    fun () -> ignore (Openarc_core.Kernel_verify.verify prog)
  in
  [ Test.make ~name:"fig1-baseline-run" (Staged.stage execute);
    Test.make ~name:"table2-fig3-kernel-verification" (Staged.stage verify);
    Test.make ~name:"table3-fig4-instrumentation" (Staged.stage instrument);
    Test.make ~name:"pipeline-parse" (Staged.stage parse);
    Test.make ~name:"pipeline-translate" (Staged.stage translate) ]

let run_micro () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"openarc" ~fmt:"%s %s" (micro_tests ()))
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Fmt.pf ppf "@.Bechamel micro-benchmarks (ns per run):@.";
  Hashtbl.iter
    (fun _name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some (t :: _) -> Fmt.pf ppf "  %-55s %12.0f@." test t
          | Some [] | None -> Fmt.pf ppf "  %-55s %12s@." test "n/a")
        tbl)
    results

let () =
  let cmd = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match cmd with
  | "table1" -> Experiments.run_table1 ppf
  | "fig1" -> Experiments.run_fig1 ppf
  | "table2" -> Experiments.run_table2 ppf
  | "fig3" -> Experiments.run_fig3 ppf
  | "table3" -> Experiments.run_table3 ppf
  | "fig4" -> Experiments.run_fig4 ppf
  | "ablation" -> Experiments.run_ablation ppf
  | "granularity" -> Experiments.run_granularity ppf
  | "sweep" -> Experiments.run_sweep ppf
  | "faults" -> Experiments.run_faults ~json:"BENCH_faults.json" ppf
  | "profile" -> Experiments.run_profile ppf
  | "profile-smoke" -> (
      try Experiments.run_profile_smoke ppf
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1)
  | "micro" -> run_micro ()
  | "all" ->
      Experiments.run_all ppf;
      run_micro ()
  | other ->
      Fmt.epr
        "unknown experiment '%s' (expected \
         table1|fig1|table2|fig3|table3|fig4|ablation|granularity|sweep|faults|profile|profile-smoke|micro|all)@."
        other;
      exit 1);
  Fmt.pf ppf "@."
