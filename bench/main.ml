(** Benchmark driver: regenerates every table and figure of the paper
    (Table I-III, Figures 1, 3, 4, plus the design ablations), then runs a
    Bechamel micro-benchmark suite over the compiler pipeline stages.

    Usage: [main.exe [table1|fig1|table2|fig3|table3|fig4|ablation|granularity|sweep|faults|symeq|symeq-smoke|profile|profile-smoke|imbalance|imbalance-smoke|memtrace|memtrace-smoke|trend|regress|wall|micro|all]]
    With no argument everything runs.  [trend] appends per-benchmark run
    summaries to BENCH_trend.jsonl; [regress] diffs the current sweep
    against the committed BENCH_profile.json under per-benchmark
    tolerances and exits 1 with a culprit report on regression; [wall]
    measures real interpreter wall-clock per benchmark and engine
    (median-of-N) and can gate on the tree-vs-compiled speedup. *)

let ppf = Fmt.stdout

(* -------- Bechamel micro-benchmarks: one per experiment's machinery ---- *)

let jacobi_src = Suite.Jacobi.bench.Suite.Bench_def.source

let micro_tests () =
  let open Bechamel in
  let parse () = ignore (Minic.Parser.parse_string jacobi_src) in
  let translate =
    let prog = Minic.Parser.parse_string jacobi_src in
    let env = Minic.Typecheck.check prog in
    fun () -> ignore (Codegen.Translate.translate env prog)
  in
  let instrument =
    let prog = Minic.Parser.parse_string jacobi_src in
    let env = Minic.Typecheck.check prog in
    let tp = Codegen.Translate.translate env prog in
    fun () -> ignore (Codegen.Checkgen.instrument tp)
  in
  let execute =
    let prog = Minic.Parser.parse_string jacobi_src in
    let env = Minic.Typecheck.check prog in
    let tp = Codegen.Translate.translate env prog in
    fun () -> ignore (Accrt.Interp.run ~coherence:false tp)
  in
  let verify =
    let prog = Minic.Parser.parse_string jacobi_src in
    fun () -> ignore (Openarc_core.Kernel_verify.verify prog)
  in
  [ Test.make ~name:"fig1-baseline-run" (Staged.stage execute);
    Test.make ~name:"table2-fig3-kernel-verification" (Staged.stage verify);
    Test.make ~name:"table3-fig4-instrumentation" (Staged.stage instrument);
    Test.make ~name:"pipeline-parse" (Staged.stage parse);
    Test.make ~name:"pipeline-translate" (Staged.stage translate) ]

let run_micro () =
  let open Bechamel in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 10) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"openarc" ~fmt:"%s %s" (micro_tests ()))
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let results = Analyze.merge ols instances results in
  Fmt.pf ppf "@.Bechamel micro-benchmarks (ns per run):@.";
  Hashtbl.iter
    (fun _name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Analyze.OLS.estimates result with
          | Some (t :: _) -> Fmt.pf ppf "  %-55s %12.0f@." test t
          | Some [] | None -> Fmt.pf ppf "  %-55s %12s@." test "n/a")
        tbl)
    results

let usage =
  "usage: main.exe \
   [table1|fig1|table2|fig3|table3|fig4|ablation|granularity|sweep|faults|symeq|symeq-smoke|\
   profile|profile-smoke|scale|scale-smoke|imbalance|imbalance-smoke|\
   memtrace|memtrace-smoke|saturate|saturate-smoke|trend|regress|wall|micro|all] \
   [options]\n\
  \  trend options:   --out FILE  --benches A,B,..  --label TEXT\n\
  \                   --devices N  --schedule block|cyclic\n\
  \  regress options: --baseline FILE  --benches A,B,..  --json FILE\n\
  \                   --saturate FILE\n\
  \  wall options:    --benches A,B,..  --repeats N  --json FILE\n\
  \                   --engine tree|compiled|both  --min-speedup X"

(* Tiny --flag VALUE parser for the trend/regress subcommands.  Any
   unknown flag or missing value is malformed input: usage to stderr,
   exit 2 (same convention as the openarc CLI). *)
let parse_flags spec argv =
  let rec go = function
    | [] -> ()
    | flag :: rest -> (
        match List.assoc_opt flag spec with
        | None ->
            Fmt.epr "unknown option '%s'@.%s@." flag usage;
            exit 2
        | Some set -> (
            match rest with
            | [] ->
                Fmt.epr "option '%s' requires a value@.%s@." flag usage;
                exit 2
            | v :: rest' ->
                set v;
                go rest'))
  in
  go argv

let split_benches s =
  match String.split_on_char ',' s with
  | [] -> None
  | l -> Some (List.filter (fun x -> x <> "") l)

let () =
  let cmd = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let rest =
    Array.to_list (Array.sub Sys.argv 2 (max 0 (Array.length Sys.argv - 2)))
  in
  (match cmd with
  | "table1" -> Experiments.run_table1 ppf
  | "fig1" -> Experiments.run_fig1 ppf
  | "table2" -> Experiments.run_table2 ppf
  | "fig3" -> Experiments.run_fig3 ppf
  | "table3" -> Experiments.run_table3 ppf
  | "fig4" -> Experiments.run_fig4 ppf
  | "ablation" -> Experiments.run_ablation ppf
  | "granularity" -> Experiments.run_granularity ppf
  | "sweep" -> Experiments.run_sweep ppf
  | "faults" -> Experiments.run_faults ~json:"BENCH_faults.json" ppf
  | "symeq" -> Experiments.run_symeq ppf
  | "symeq-smoke" -> (
      try Experiments.run_symeq_smoke ppf
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1)
  | "profile" -> Experiments.run_profile ppf
  | "profile-smoke" -> (
      try Experiments.run_profile_smoke ppf
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1)
  | "scale" ->
      let code = Experiments.run_scale ppf in
      if code <> 0 then exit code
  | "scale-smoke" -> (
      try Experiments.run_scale_smoke ppf
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1)
  | "imbalance" ->
      let code = Experiments.run_imbalance ppf in
      if code <> 0 then exit code
  | "imbalance-smoke" -> (
      try Experiments.run_imbalance_smoke ppf
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1)
  | "memtrace" ->
      let code = Experiments.run_memtrace ppf in
      if code <> 0 then exit code
  | "memtrace-smoke" -> (
      try Experiments.run_memtrace_smoke ppf
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1)
  | "saturate" ->
      let code = Experiments.run_saturate ppf in
      if code <> 0 then exit code
  | "saturate-smoke" -> (
      try Experiments.run_saturate_smoke ppf
      with Failure msg ->
        Fmt.epr "%s@." msg;
        exit 1)
  | "trend" ->
      let out = ref Experiments.trend_path in
      let benches = ref None in
      let label = ref "" in
      let devices = ref 1 in
      let schedule = ref Gpusim.Device_set.Block in
      parse_flags
        [ ("--out", fun v -> out := v);
          ("--benches", fun v -> benches := split_benches v);
          ("--label", fun v -> label := v);
          ( "--devices",
            fun v ->
              match int_of_string_opt v with
              | Some n when n >= 1 -> devices := n
              | _ ->
                  Fmt.epr "invalid device count '%s'@.%s@." v usage;
                  exit 2 );
          ( "--schedule",
            fun v ->
              match Gpusim.Device_set.schedule_of_string v with
              | Ok s -> schedule := s
              | Error e ->
                  Fmt.epr "invalid schedule: %s@.%s@." e usage;
                  exit 2 ) ]
        rest;
      (try
         Experiments.run_trend ~out:!out ?names:!benches ~label:!label
           ~devices:!devices ~schedule:!schedule ppf
       with Failure msg ->
         Fmt.epr "%s@." msg;
         exit 2)
  | "regress" ->
      let baseline = ref Experiments.profile_path in
      let benches = ref None in
      let json = ref None in
      let saturate = ref None in
      parse_flags
        [ ("--baseline", fun v -> baseline := v);
          ("--benches", fun v -> benches := split_benches v);
          ("--json", fun v -> json := Some v);
          ("--saturate", fun v -> saturate := Some v) ]
        rest;
      let code =
        try
          Experiments.run_regress ~baseline:!baseline ?names:!benches
            ?json:!json ?saturate:!saturate ppf
        with Failure msg ->
          Fmt.epr "%s@." msg;
          exit 2
      in
      if code <> 0 then exit code
  | "wall" ->
      (* Malformed values (bad engine name, non-numeric counts) are usage
         errors: usage to stderr, exit 2 — same contract as unknown
         flags. *)
      let malformed msg =
        Fmt.epr "%s@.%s@." msg usage;
        exit 2
      in
      let benches = ref None in
      let json = ref Experiments.wall_path in
      let repeats = ref 5 in
      let engines =
        ref [ Accrt.Engine.Tree; Accrt.Engine.Compiled ]
      in
      let min_speedup = ref None in
      parse_flags
        [ ("--benches", fun v -> benches := split_benches v);
          ("--json", fun v -> json := v);
          ( "--repeats",
            fun v ->
              match int_of_string_opt v with
              | Some n when n > 0 -> repeats := n
              | _ -> malformed (Fmt.str "invalid repeat count '%s'" v) );
          ( "--engine",
            fun v ->
              match (v, Accrt.Engine.of_string v) with
              | "both", _ ->
                  engines := [ Accrt.Engine.Tree; Accrt.Engine.Compiled ]
              | _, Some e -> engines := [ e ]
              | _, None -> malformed (Fmt.str "unknown engine '%s'" v) );
          ( "--min-speedup",
            fun v ->
              match float_of_string_opt v with
              | Some x when x > 0.0 -> min_speedup := Some x
              | _ -> malformed (Fmt.str "invalid speedup bound '%s'" v) ) ]
        rest;
      let code =
        try
          Experiments.run_wall ~json:!json ?names:!benches
            ~engines:!engines ~repeats:!repeats ?min_speedup:!min_speedup
            ppf
        with Failure msg ->
          Fmt.epr "%s@." msg;
          exit 2
      in
      if code <> 0 then exit code
  | "micro" -> run_micro ()
  | "all" ->
      Experiments.run_all ppf;
      Fmt.pf ppf "@.";
      Experiments.run_symeq ppf;
      run_micro ()
  | other ->
      Fmt.epr "unknown experiment '%s'@.%s@." other usage;
      exit 2);
  Fmt.pf ppf "@."
